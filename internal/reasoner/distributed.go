// Coordinator side of the distributed reasoner: DPR ships each window's
// partitions to remote workers over internal/transport and re-interns the
// wire-form answers through cached per-worker dictionaries. The wire path
// is symmetric and pipelined: requests travel as dictionary-coded deltas
// against the previously shipped window (a coordinator→worker WireEncoder
// mirrors the worker→coordinator answer dictionaries), and up to
// MaxInFlight windows may be outstanding per session (Submit/Collect),
// overlapping shipping with remote grounding and solving.

package reasoner

import (
	"crypto/tls"
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"

	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/solve"
	"streamrule/internal/rdf"
	"streamrule/internal/transport"
)

// DPROptions configures the distributed parallel reasoner.
type DPROptions struct {
	// Workers lists worker addresses (host:port). Partitions are assigned
	// round-robin: partition i belongs to Workers[i mod len(Workers)], and
	// each distinct worker gets ONE session hosting all of its partitions
	// (the worker reasons over them in parallel and combines their answers
	// before responding).
	Workers []string
	// ProgramSource is the ASP program text shipped to workers in the
	// session handshake (workers are program-agnostic; reasoner.Config
	// holds only the parsed form).
	ProgramSource string
	// StragglerTimeout bounds one remote round (ship window, reason,
	// receive answers). A session that misses it is processed locally
	// and redialed for the next window. 0 = 10s.
	StragglerTimeout time.Duration
	// DialTimeout bounds session establishment (0 = transport default).
	DialTimeout time.Duration
	// MaxFrame bounds a protocol frame (0 = transport.DefaultMaxFrame).
	MaxFrame int
	// MaxInFlight bounds the number of submitted-but-uncollected windows
	// per session (0 or 1 = strict lockstep, the pre-pipelining behavior).
	// Depth d overlaps the shipping and partitioning of window n+1 with
	// the remote compute of windows n-d+2..n; Collect still yields windows
	// strictly in submission order.
	MaxInFlight int
	// Rebalance enables the adaptive rebalancer (rebalance.go): the
	// coordinator observes per-partition load every window and, between
	// windows, migrates partitions across workers and — when the
	// partitioner is an *AdaptivePartitioner — splits overloaded
	// communities. nil keeps the static round-robin assignment.
	Rebalance *RebalanceOptions
	// Dialer overrides how worker connections are established (nil = plain
	// TCP). This is the seam the chaos harness (internal/chaos) injects
	// faults through; production deployments use it for custom networking.
	Dialer transport.DialFunc
	// TLS wraps every worker connection in TLS (mutual when the config
	// carries a client certificate); workers must serve TLS to match.
	TLS *tls.Config
	// HeartbeatInterval is how long a session may sit idle (no successful
	// round) before the next submit probes it with a protocol-level ping,
	// detecting a dead worker at ping cost instead of a full straggler
	// deadline. 0 = 2s; negative disables probing. Probes are only sent
	// when the session has zero windows in flight — a ping would otherwise
	// consume an in-flight window's response.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout bounds one probe round trip (0 = StragglerTimeout/4).
	HeartbeatTimeout time.Duration
	// Breaker tunes the per-session circuit breaker that quarantines
	// failing workers between redial attempts (the zero value uses the
	// BreakerOptions defaults).
	Breaker BreakerOptions
}

// TransportStats aggregates the distributed reasoner's wire metrics across
// all worker sessions since construction.
type TransportStats struct {
	// RemoteWindows counts partition windows answered by a worker;
	// LocalFallbacks counts partition windows processed locally because the
	// session was down, timed out, or desynchronized.
	RemoteWindows, LocalFallbacks int64
	// Redials counts session re-establishments after a transport failure
	// (the initial dials are not counted).
	Redials int64
	// BytesSent/BytesReceived are cumulative wire bytes across sessions,
	// redials included.
	BytesSent, BytesReceived int64
	// DictRefs counts symbol/predicate/term references resolved through the
	// per-worker response dictionaries while decoding answers; DictShipped
	// counts the dictionary entries that had to be shipped in deltas. Their
	// ratio is the response-side dictionary hit rate — on a repeating
	// vocabulary it approaches 1 because every symbol crosses the wire
	// exactly once.
	DictRefs, DictShipped int64
	// ReqDictRefs/ReqDictShipped are the request-side counterparts: symbol
	// references encoded into requests vs dictionary entries shipped in
	// request deltas (the coordinator→worker dictionary).
	ReqDictRefs, ReqDictShipped int64
	// Rounds counts worker requests shipped; Windows counts windows
	// processed (Collect completions). Bytes-per-window headline numbers
	// are BytesSent/Windows and BytesReceived/Windows.
	Rounds, Windows int64
	// FullPartWindows/DeltaPartWindows split the shipped partition windows
	// by payload form: complete sub-windows vs deltas against the previous
	// one.
	FullPartWindows, DeltaPartWindows int64
	// InFlightSum accumulates, over all rounds, the session's in-flight
	// depth right after the submit — InFlightSum/Rounds is the mean
	// pipeline occupancy (1.0 = lockstep).
	InFlightSum int64
	// WorkerRotations sums the table rotations last reported by each live
	// worker session, and WorkerLiveAtoms their live interned atoms — the
	// remote counterpart of MemoryStats.Table for budget sizing.
	WorkerRotations, WorkerLiveAtoms int64
	// Heartbeats counts protocol-level health probes sent to idle sessions
	// (see DPROptions.HeartbeatInterval). A probe that fails retires the
	// session before a window is risked on it.
	Heartbeats int64
	// CircuitOpens counts circuit-breaker opens across sessions: each one
	// is a worker quarantined after consecutive failures (or a failed
	// half-open probe). A steadily climbing count is a flapping worker.
	CircuitOpens int64
	// ChecksumFailures counts inbound frames rejected on a CRC mismatch.
	// Each one retired a session cleanly instead of feeding corrupt bytes
	// to the decoder; any nonzero value on a supposedly clean network is a
	// hardware or path problem worth chasing.
	ChecksumFailures int64
}

// DictHitRate returns the fraction of response-side dictionary references
// served without shipping a new entry (0 when nothing was decoded yet).
func (s TransportStats) DictHitRate() float64 {
	if s.DictRefs == 0 {
		return 0
	}
	return 1 - float64(s.DictShipped)/float64(s.DictRefs)
}

// ReqDictHitRate returns the request-side dictionary hit rate: the fraction
// of encoded symbol references that did not require shipping a dictionary
// entry (0 when nothing was encoded yet).
func (s TransportStats) ReqDictHitRate() float64 {
	if s.ReqDictRefs == 0 {
		return 0
	}
	return 1 - float64(s.ReqDictShipped)/float64(s.ReqDictRefs)
}

// MeanInFlight returns the mean pipeline depth observed at submit time
// (1.0 under lockstep; approaches MaxInFlight when the pipeline stays
// full).
func (s TransportStats) MeanInFlight() float64 {
	if s.Rounds == 0 {
		return 0
	}
	return float64(s.InFlightSum) / float64(s.Rounds)
}

// PartitionLoad is one partition's observed load in the most recently
// collected window: the rebalancer's per-partition signal, also exposed for
// operators via DPR.PartitionLoads.
type PartitionLoad struct {
	// Partition is the global partition index.
	Partition int
	// Worker is the address of the session the partition is assigned to.
	Worker string
	// Items is the number of window items routed into the partition.
	Items int
	// CP is the partition's end-to-end compute time for the window
	// (worker-reported for remote legs, measured for local fallbacks).
	CP time.Duration
	// Remote reports whether the partition was answered by its worker
	// (false: local fallback served it).
	Remote bool
}

// sessionTotals accumulates the wire counters of sessions removed from the
// fleet (RemoveWorker), so TransportStats survive membership changes.
type sessionTotals struct {
	remote, local, redials int64
	sent, recv             int64
	refs, shipped          int64
	reqRefs, reqShipped    int64
	crcFails, opens        int64
}

// dprSession is one worker's leg of the reasoner: a transport client, the
// response-dictionary decoder, the request-dictionary encoder, and the
// delta bases of the partitions it hosts. Counters of dead clients and
// dictionaries are folded into the accumulators on replacement so session
// totals survive redials.
type dprSession struct {
	addr  string
	parts []int // global partition indexes hosted by this session

	client *transport.Client
	dec    *intern.WireDecoder
	reqEnc *intern.WireEncoder

	// base holds the last successfully submitted sub-window per hosted
	// partition (parallel to parts); baseValid marks the delta chain
	// intact. Any failure — submit, await, desync — invalidates it, and
	// the next request ships full windows over a fresh session.
	base      [][]rdf.Triple
	baseValid bool

	accSent, accRecv          int64
	accRefs, accShipped       int64
	accReqRefs, accReqShipped int64
	accCrcFails               int64
	redials, remote, local    int64
	// Last worker-side table snapshot seen in a response.
	workerRotations, workerLiveAtoms int64
	// brk quarantines the session after consecutive failures — any failed
	// dial, round, heartbeat, or desync feeds it. While the circuit is
	// open the session is skipped (immediate local fallback): an
	// unreachable worker must cost the pipeline local-processing latency,
	// not a dial timeout per window.
	brk *breaker
	// lastOK is the last time this session completed a successful dial,
	// round, or heartbeat; the idle-probe clock.
	lastOK time.Time
}

// retire folds the live client/dictionary counters into the accumulators,
// drops the connection, and invalidates the delta bases.
func (ps *dprSession) retire() {
	if ps.client != nil {
		ps.accSent += ps.client.BytesSent()
		ps.accRecv += ps.client.BytesReceived()
		ps.accCrcFails += ps.client.ChecksumFailures()
		ps.client.Close()
		ps.client = nil
	}
	if ps.dec != nil {
		ps.accRefs += ps.dec.Refs()
		ps.accShipped += ps.dec.Shipped()
		ps.dec = nil
	}
	if ps.reqEnc != nil {
		ps.accReqRefs += ps.reqEnc.Refs()
		ps.accReqShipped += ps.reqEnc.Shipped()
		ps.reqEnc = nil
	}
	ps.baseValid = false
}

// pendingWindow is one submitted-but-uncollected window: everything Collect
// needs to finish it — the partitioned triples (for local fallback), the
// submit-time latencies, and which sessions a request actually reached.
type pendingWindow struct {
	start        time.Time
	scratch      bool
	window       []rdf.Triple
	parts        [][]rdf.Triple
	partitionLat time.Duration
	skipped      int
	legs         []pendingLeg
}

// pendingLeg records one session's submit outcome. client pins the exact
// client the request went out on: if the session redialed in the meantime,
// the response belongs to a dead stream and the leg falls back locally.
type pendingLeg struct {
	submitted bool
	client    *transport.Client
}

// DPR is the distributed parallel reasoner: the partitioning and combining
// handlers of PR with the k reasoner copies running on remote workers. Each
// worker holds one session hosting all of its partitions; windows ship as
// dictionary-coded deltas (a steady-state sliding window costs a few
// hundred bytes, not a re-serialization of the window) and answers come
// back worker-combined in portable wire form, re-interned into the
// coordinator's table through a cached per-worker dictionary.
//
// Every partition also keeps a local fallback reasoner: when a session is
// down, times out (straggler), or desynchronizes, its partitions are
// processed in-process for that window — answers are identical either way,
// only latency differs — and the session is redialed behind the scenes.
// Workers run with the configured MemoryBudget (each session owns a
// private, rotating table); the coordinator applies the same budget to its
// own answer table.
//
// Beyond the classic Process/ProcessDelta lockstep, DPR exposes the
// pipelined pair Submit/Collect: up to MaxInFlight windows may be in
// flight, and Collect yields their outputs strictly in submission order.
// DPR is not safe for concurrent use.
type DPR struct {
	part Partitioner
	opts DPROptions
	// cfg is the (post-construction) local-reasoner config: the rebalancer
	// rebuilds dpr.locals from it when the partition count changes. Its
	// GroundOpts.Intern is dpr.tab and its budgets are zeroed (rotation is
	// coordinated at DPR level).
	cfg Config

	tab      *intern.Table
	locals   []*R
	sessions []*dprSession
	pending  []*pendingWindow

	// MaxCombinations caps the answer-set cross product (see PR). It is
	// also shipped to workers (at dial time) for the worker-side combine.
	MaxCombinations int

	budget      int
	budgetBytes int64
	liveBuf     []intern.AtomID
	hello       transport.Hello
	diffBuf     map[rdf.Triple]int

	rounds, windows       int64
	fullParts, deltaParts int64
	inFlightSum           int64
	heartbeats            int64

	// removed holds the folded counters of sessions dropped by
	// RemoveWorker; lastLoads is the per-partition load observed by the
	// most recent Collect; rebal is the optional adaptive rebalancer;
	// staticRebal carries the join/leave counters that tick even without
	// a rebalancer.
	removed     sessionTotals
	lastLoads   []PartitionLoad
	lastWindow  []rdf.Triple
	rebal       *rebalancer
	staticRebal RebalanceStats
}

// NewDPR builds a distributed reasoner: partitions are assigned round-robin
// over the worker addresses and each distinct worker gets one session
// hosting its partitions. Construction fails when no worker is reachable (a
// partially reachable fleet degrades to local fallback per session
// instead).
func NewDPR(cfg Config, part Partitioner, opts DPROptions) (*DPR, error) {
	if part == nil {
		return nil, fmt.Errorf("reasoner: nil partitioner")
	}
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("reasoner: no worker addresses")
	}
	if opts.ProgramSource == "" {
		return nil, fmt.Errorf("reasoner: DPR needs the program source to ship to workers")
	}
	if opts.StragglerTimeout <= 0 {
		opts.StragglerTimeout = 10 * time.Second
	}
	n := part.NumPartitions()
	if n < 1 {
		return nil, fmt.Errorf("reasoner: partitioner yields %d partitions", n)
	}

	dpr := &DPR{part: part, opts: opts, budget: cfg.MemoryBudget, budgetBytes: cfg.MemoryBudgetBytes}
	// The coordinator owns a private table for decoded answers and local
	// fallbacks; budget rotation is coordinated here (workers rotate their
	// own tables independently).
	if cfg.GroundOpts.Intern == nil {
		cfg.GroundOpts.Intern = intern.NewTable()
	}
	dpr.tab = cfg.GroundOpts.Intern
	cfg.MemoryBudget = 0
	cfg.MemoryBudgetBytes = 0
	dpr.cfg = cfg
	for i := 0; i < n; i++ {
		r, err := NewR(cfg)
		if err != nil {
			return nil, err
		}
		dpr.locals = append(dpr.locals, r)
	}
	dpr.hello = transport.Hello{
		Program:           opts.ProgramSource,
		Inpre:             cfg.Inpre,
		Arities:           map[string]int(cfg.Arities),
		OutputPreds:       cfg.OutputPreds,
		IncludeInputFacts: cfg.IncludeInputFacts,
		MaxModels:         cfg.SolveOpts.MaxModels,
		NaivePropagation:  cfg.SolveOpts.NaivePropagation,
		CDNL:              cfg.SolveOpts.CDNL,
		MaxAtoms:          cfg.GroundOpts.MaxAtoms,
		MemoryBudget:      dpr.budget,
		MemoryBudgetBytes: dpr.budgetBytes,
	}

	// One session per worker; partitions are assigned round-robin
	// (partition i → worker i mod W). A worker beyond the partition count
	// starts empty and idles until the rebalancer hands it work.
	w := len(opts.Workers)
	for wi := 0; wi < w; wi++ {
		ps := dpr.newSession(opts.Workers[wi])
		for p := wi; p < n; p += w {
			ps.parts = append(ps.parts, p)
		}
		dpr.sessions = append(dpr.sessions, ps)
	}
	if opts.Rebalance != nil {
		dpr.rebal = newRebalancer(*opts.Rebalance)
	}
	reachable := false
	for _, ps := range dpr.sessions {
		if len(ps.parts) == 0 {
			continue
		}
		if err := dpr.dial(ps); err == nil {
			reachable = true
		}
	}
	if !reachable {
		dpr.Close()
		return nil, fmt.Errorf("reasoner: none of the %d workers are reachable (first: %s)",
			len(opts.Workers), opts.Workers[0])
	}
	return dpr, nil
}

// newSession builds the bookkeeping for one worker address (no dial).
func (dpr *DPR) newSession(addr string) *dprSession {
	return &dprSession{addr: addr, brk: newBreaker(dpr.opts.Breaker, nil, nil)}
}

// dial (re-)establishes one worker session with fresh dictionaries on both
// directions (the worker's session state is new, so the request dictionary
// replays from scratch and the first request ships full windows).
func (dpr *DPR) dial(ps *dprSession) error {
	ps.retire()
	hello := dpr.hello
	hello.Partitions = len(ps.parts)
	hello.MaxCombinations = dpr.MaxCombinations
	c, err := transport.Dial(ps.addr, &hello, transport.ClientOptions{
		DialTimeout: dpr.opts.DialTimeout,
		MaxFrame:    dpr.opts.MaxFrame,
		MaxInFlight: dpr.opts.MaxInFlight,
		Dialer:      dpr.opts.Dialer,
		TLS:         dpr.opts.TLS,
	})
	if err != nil {
		return err
	}
	ps.client = c
	ps.dec = intern.NewWireDecoder(dpr.tab)
	ps.reqEnc = intern.NewWireEncoder()
	ps.base = make([][]rdf.Triple, len(ps.parts))
	ps.baseValid = false
	ps.lastOK = time.Now()
	// A redialed session talks to a FRESH worker session with an empty
	// table: the previous table snapshot no longer describes anything.
	ps.workerRotations, ps.workerLiveAtoms = 0, 0
	return nil
}

// NumPartitions returns the number of partitions.
func (dpr *DPR) NumPartitions() int { return len(dpr.locals) }

// MaxInFlight returns the configured pipeline depth (≥ 1).
func (dpr *DPR) MaxInFlight() int {
	if dpr.opts.MaxInFlight < 1 {
		return 1
	}
	return dpr.opts.MaxInFlight
}

// InFlight returns the number of submitted windows not yet collected.
func (dpr *DPR) InFlight() int { return len(dpr.pending) }

// Close drains the pipeline, then tears down every worker session. Every
// submitted window is collected first, so in-flight remote legs finish
// deterministically (a dead session's legs fall back locally, bounded by
// the straggler timeout) instead of being abandoned mid-flight. The DPR
// must not be used afterwards.
func (dpr *DPR) Close() {
	for len(dpr.pending) > 0 {
		// Collect pops the window before reporting errors, so the drain
		// always terminates; a worker-side processing error has nowhere to
		// go from Close and the remaining windows still drain.
		if _, err := dpr.Collect(); err != nil {
			continue
		}
	}
	for _, ps := range dpr.sessions {
		ps.retire()
	}
	dpr.pending = nil
}

// Process partitions the window, reasons over the partitions on the
// workers (grounding from scratch), and combines the answers.
func (dpr *DPR) Process(window []rdf.Triple) (*Output, error) {
	return dpr.roundTrip(window, true)
}

// ProcessDelta is the incremental Process for overlapping windows: each
// worker session maintains its partitions' groundings across windows, fed
// by the per-partition deltas the coordinator derives against the
// previously shipped window (stream deltas cannot be routed through
// duplicating partitioners — same reasoning as PR.ProcessDelta). A nil
// delta degrades to the from-scratch Process.
func (dpr *DPR) ProcessDelta(window []rdf.Triple, d *Delta) (*Output, error) {
	if d == nil {
		return dpr.Process(window)
	}
	return dpr.roundTrip(window, false)
}

func (dpr *DPR) roundTrip(window []rdf.Triple, scratch bool) (*Output, error) {
	if len(dpr.pending) > 0 {
		return nil, fmt.Errorf("reasoner: %d window(s) in flight; Collect them before Process", len(dpr.pending))
	}
	dpr.submit(window, scratch)
	return dpr.Collect()
}

// Submit ships one window into the pipeline without waiting for its result
// (d nil forces from-scratch processing, mirroring ProcessDelta). It fails
// when MaxInFlight windows are already outstanding — Collect first.
func (dpr *DPR) Submit(window []rdf.Triple, d *Delta) error {
	if len(dpr.pending) >= dpr.MaxInFlight() {
		return fmt.Errorf("reasoner: pipeline full (%d windows in flight); Collect first", len(dpr.pending))
	}
	dpr.submit(window, d == nil)
	return nil
}

// submit partitions the window and ships one request per reachable worker
// session. Submission never fails the window: a session that cannot take
// the request simply leaves its leg unsubmitted, and Collect processes
// those partitions locally.
func (dpr *DPR) submit(window []rdf.Triple, scratch bool) {
	pw := &pendingWindow{start: time.Now(), scratch: scratch, window: window}
	t0 := time.Now()
	parts, skipped := dpr.part.Partition(window)
	pw.partitionLat = time.Since(t0)
	pw.parts = parts
	pw.skipped = skipped
	pw.legs = make([]pendingLeg, len(dpr.sessions))

	for si, ps := range dpr.sessions {
		if len(ps.parts) == 0 {
			continue
		}
		if !dpr.ensureConnected(ps) {
			continue
		}
		req := dpr.buildReq(ps, parts, scratch)
		if err := ps.client.Submit(req, dpr.opts.StragglerTimeout); err != nil {
			ps.retire()
			ps.brk.failure()
			continue
		}
		// The shipped sub-windows become the delta bases of the next
		// request on this session (the partitioner returns fresh slices,
		// safe to retain).
		for j, gi := range ps.parts {
			ps.base[j] = parts[gi]
		}
		ps.baseValid = true
		pw.legs[si] = pendingLeg{submitted: true, client: ps.client}
		dpr.rounds++
		dpr.inFlightSum += int64(ps.client.InFlight())
	}
	dpr.pending = append(dpr.pending, pw)
}

// ensureConnected returns true when the session holds a usable client:
// live clients are heartbeat-probed when they have sat idle past the
// interval, and dead ones are redialed under the session's circuit breaker
// (while the circuit is open the session is skipped — immediate local
// fallback instead of a dial timeout per window).
func (dpr *DPR) ensureConnected(ps *dprSession) bool {
	if ps.client != nil && !ps.client.Broken() {
		if !dpr.heartbeatDue(ps) {
			return true
		}
		dpr.heartbeats++
		if err := ps.client.Ping(dpr.heartbeatTimeout()); err == nil {
			ps.lastOK = time.Now()
			ps.brk.success()
			return true
		}
		// The probe found the worker dead between windows — retire now and
		// try one redial below, under the breaker like any other failure.
		ps.retire()
		ps.brk.failure()
	}
	if !ps.brk.allow() {
		return false
	}
	if err := dpr.dial(ps); err != nil {
		ps.brk.failure()
		return false
	}
	ps.brk.success()
	ps.redials++
	return true
}

// heartbeatDue reports whether a live session should be probed before the
// next window is risked on it: only when idle-probing is enabled, the
// session has no windows in flight (a ping would consume an in-flight
// response), and it has been idle past the interval.
func (dpr *DPR) heartbeatDue(ps *dprSession) bool {
	hi := dpr.opts.HeartbeatInterval
	if hi < 0 {
		return false
	}
	if hi == 0 {
		hi = 2 * time.Second
	}
	return ps.client.InFlight() == 0 && time.Since(ps.lastOK) >= hi
}

// heartbeatTimeout bounds one probe round trip.
func (dpr *DPR) heartbeatTimeout() time.Duration {
	if dpr.opts.HeartbeatTimeout > 0 {
		return dpr.opts.HeartbeatTimeout
	}
	return dpr.opts.StragglerTimeout / 4
}

// buildReq encodes one session's request: per hosted partition either the
// delta against the previously shipped sub-window or — on the scratch
// path, a fresh session, or when the delta would not be smaller — the full
// sub-window, all triples dictionary-coded through the session's request
// encoder.
func (dpr *DPR) buildReq(ps *dprSession, parts [][]rdf.Triple, scratch bool) *transport.WindowReq {
	ps.reqEnc.BeginRaw()
	req := &transport.WindowReq{Scratch: scratch, Parts: make([]transport.PartReq, len(ps.parts))}
	for j, gi := range ps.parts {
		cur := parts[gi]
		pr := &req.Parts[j]
		pr.WindowLen = len(cur)
		if scratch || !ps.baseValid {
			pr.Full = true
			pr.Added = encodeTriples(ps.reqEnc, cur)
			dpr.fullParts++
			continue
		}
		added, retracted := diffWindows(ps.base[j], cur, &dpr.diffBuf)
		if len(added)+len(retracted) >= len(cur) {
			pr.Full = true
			pr.Added = encodeTriples(ps.reqEnc, cur)
			dpr.fullParts++
			continue
		}
		pr.Added = encodeTriples(ps.reqEnc, added)
		pr.Retracted = encodeTriples(ps.reqEnc, retracted)
		dpr.deltaParts++
	}
	req.Dict = ps.reqEnc.Flush()
	return req
}

// encodeTriples wire-codes triples as three dictionary symbol indexes each.
func encodeTriples(enc *intern.WireEncoder, ts []rdf.Triple) []uint64 {
	if len(ts) == 0 {
		return nil
	}
	out := make([]uint64, 0, 3*len(ts))
	for _, t := range ts {
		out = append(out, uint64(enc.RawSym(t.S)), uint64(enc.RawSym(t.P)), uint64(enc.RawSym(t.O)))
	}
	return out
}

// diffWindows computes the multiset difference between the previously
// shipped sub-window and the current one: added = cur − base,
// retracted = base − cur. The scratch map is reused across calls.
func diffWindows(base, cur []rdf.Triple, scratch *map[rdf.Triple]int) (added, retracted []rdf.Triple) {
	counts := *scratch
	if counts == nil {
		counts = make(map[rdf.Triple]int)
		*scratch = counts
	}
	clear(counts)
	for _, t := range base {
		counts[t]++
	}
	for _, t := range cur {
		if counts[t] > 0 {
			counts[t]--
		} else {
			added = append(added, t)
		}
	}
	// What remains of base was not matched by cur: retract each leftover
	// occurrence (order is irrelevant — the worker applies a multiset).
	for t, c := range counts {
		for ; c > 0; c-- {
			retracted = append(retracted, t)
		}
	}
	return added, retracted
}

// Collect finishes the oldest in-flight window: await the worker responses
// (falling back locally for sessions that died mid-flight), combine across
// workers, rotate under the budget. Outputs surface strictly in submission
// order.
func (dpr *DPR) Collect() (*Output, error) {
	if len(dpr.pending) == 0 {
		return nil, fmt.Errorf("reasoner: no window in flight")
	}
	pw := dpr.pending[0]
	dpr.pending = dpr.pending[1:]
	if dpr.budget > 0 {
		// Decoding and local fallback intern into the coordinator table
		// at collect time, so the epoch opens here.
		dpr.tab.AdvanceEpoch()
	}
	out := &Output{Skipped: pw.skipped}
	out.Latency.Partition = pw.partitionLat
	for _, p := range pw.parts {
		out.PartitionSizes = append(out.PartitionSizes, len(p))
		out.RoutedItems += len(p)
	}

	// Per-partition load rows for this window: every leg fills the rows of
	// its own (disjoint) partitions, so the slice needs no locking.
	loads := make([]PartitionLoad, len(dpr.locals))
	results := make([]*Output, len(dpr.sessions))
	errs := make([]error, len(dpr.sessions))
	var wg sync.WaitGroup
	for si := range dpr.sessions {
		if len(dpr.sessions[si].parts) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			results[si], errs[si] = dpr.collectLeg(dpr.sessions[si], &pw.legs[si], pw, loads)
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	dpr.windows++
	dpr.lastLoads = loads
	dpr.lastWindow = pw.window

	// Drop the legs of partition-less sessions (idle workers contribute
	// nothing to the window).
	legs := results[:0]
	for _, res := range results {
		if res != nil {
			legs = append(legs, res)
		}
	}
	results = legs

	out.Incremental = len(results) > 0
	// The aggregate is on the fast path only when every leg was.
	out.SolveStats.FastPath = len(results) > 0
	var maxTotal time.Duration
	for _, res := range results {
		if !res.Incremental {
			out.Incremental = false
		}
		if !res.SolveStats.FastPath {
			out.SolveStats.FastPath = false
		}
		if res.Latency.Total > maxTotal {
			maxTotal = res.Latency.Total
		}
		if res.Latency.Convert > out.Latency.Convert {
			out.Latency.Convert = res.Latency.Convert
		}
		if res.Latency.Ground > out.Latency.Ground {
			out.Latency.Ground = res.Latency.Ground
		}
		if res.Latency.Solve > out.Latency.Solve {
			out.Latency.Solve = res.Latency.Solve
		}
		out.GroundStats.Atoms += res.GroundStats.Atoms
		out.GroundStats.Rules += res.GroundStats.Rules
		out.GroundStats.CertainFacts += res.GroundStats.CertainFacts
		out.GroundStats.Iterations += res.GroundStats.Iterations
		out.SolveStats.Add(res.SolveStats)
	}

	// Combine across workers (each leg is already combined over its own
	// partitions — unions are associative, so the nesting is equivalent to
	// PR's flat combine).
	t0 := time.Now()
	perLeg := make([][]*solve.AnswerSet, len(results))
	for i, res := range results {
		perLeg[i] = res.Answers
	}
	out.Answers = Combine(perLeg, dpr.maxComb())
	// Cross-worker combine only: each leg's own combine already lives in
	// its Latency.Total (the worker folds CombineNS into TotalNS, and the
	// fallback leg adds its combine to Total) — adding the max leg combine
	// here again would double-count it on the critical path.
	out.Latency.Combine = time.Since(t0)

	// Coordinated rotation of the coordinator's answer table, mirroring PR.
	t0 = time.Now()
	dpr.maybeRotate(out)
	rotate := time.Since(t0)

	out.Latency.Total = time.Since(pw.start)
	out.Latency.CriticalPath = out.Latency.Partition + maxTotal + out.Latency.Combine + rotate

	// With the pipeline drained this is a between-windows point: let the
	// rebalancer observe the window's loads and, if skew sustained, adapt
	// the layout. Rebalancing never fails a window.
	if dpr.rebal != nil && len(dpr.pending) == 0 {
		dpr.rebal.step(dpr)
	}
	return out, nil
}

func (dpr *DPR) maxComb() int {
	if dpr.MaxCombinations > 0 {
		return dpr.MaxCombinations
	}
	return DefaultMaxCombinations
}

// collectLeg finishes one session's leg of a window: await and decode the
// remote response when the request went out on the still-live client, or
// reason over the leg's partitions locally. Either way it fills the leg's
// rows of the per-partition load slice — a partition's items and cp-ms are
// attributed exactly once per window, to whichever side actually served it.
func (dpr *DPR) collectLeg(ps *dprSession, leg *pendingLeg, pw *pendingWindow, loads []PartitionLoad) (*Output, error) {
	if leg.submitted && ps.client != nil && ps.client == leg.client && !ps.client.Broken() {
		out, err, usable := dpr.awaitRemote(ps, pw, loads)
		if usable {
			return out, err
		}
	}
	// Local fallback, partitions in parallel like the worker would run
	// them; answers are identical either way.
	ps.local += int64(len(ps.parts))
	outs := make([]*Output, len(ps.parts))
	errs := make([]error, len(ps.parts))
	var wg sync.WaitGroup
	for j, gi := range ps.parts {
		wg.Add(1)
		go func(j, gi int) {
			defer wg.Done()
			if pw.scratch {
				outs[j], errs[j] = dpr.locals[gi].Process(pw.parts[gi])
			} else {
				outs[j], errs[j] = dpr.locals[gi].ProcessAuto(pw.parts[gi])
			}
		}(j, gi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for j, gi := range ps.parts {
		loads[gi] = PartitionLoad{
			Partition: gi,
			Worker:    ps.addr,
			Items:     len(pw.parts[gi]),
			CP:        outs[j].Latency.Total,
		}
	}
	return dpr.combineLeg(outs), nil
}

// awaitRemote receives and decodes one session response. usable=false means
// the leg must fall back locally (transport failure, timeout, desync);
// usable=true with a non-nil error reports a worker-side processing error,
// terminal for the window exactly like a local partition error would be.
func (dpr *DPR) awaitRemote(ps *dprSession, pw *pendingWindow, loads []PartitionLoad) (*Output, error, bool) {
	start := time.Now()
	resp, err := ps.client.Await(dpr.opts.StragglerTimeout)
	if err != nil {
		if re, ok := err.(*transport.RemoteError); ok && !re.Desync {
			// The worker reasoner failed on this window (e.g. the grounder's
			// atom limit): surface it — the local engine would fail the same
			// way, and masking it behind a fallback would hide program bugs.
			// The transport itself answered in time, so the session stays
			// healthy for the breaker.
			ps.remote += int64(len(ps.parts))
			ps.lastOK = time.Now()
			ps.brk.success()
			return nil, fmt.Errorf("reasoner: worker %s: %s", ps.addr, re.Msg), true
		}
		ps.retire()
		ps.brk.failure()
		return nil, nil, false
	}
	if err := ps.dec.Apply(&resp.Dict); err != nil {
		// Dictionary desync: the session cannot be trusted any more. Drop it
		// and serve this window locally; the redial replays the dictionary.
		ps.retire()
		ps.brk.failure()
		return nil, nil, false
	}
	answers := make([]*solve.AnswerSet, len(resp.Answers))
	for j, ws := range resp.Answers {
		ids, err := ps.dec.DecodeSet(ws, nil)
		if err != nil {
			ps.retire()
			ps.brk.failure()
			return nil, nil, false
		}
		answers[j] = solve.FromIDs(dpr.tab, ids)
	}

	ps.remote += int64(len(ps.parts))
	ps.lastOK = time.Now()
	ps.brk.success()
	ps.workerRotations = int64(resp.Rotations)
	ps.workerLiveAtoms = int64(resp.LiveAtoms)
	for j, gi := range ps.parts {
		pl := PartitionLoad{
			Partition: gi,
			Worker:    ps.addr,
			Items:     len(pw.parts[gi]),
			Remote:    true,
		}
		if j < len(resp.PartTotalNS) {
			pl.CP = time.Duration(resp.PartTotalNS[j])
		}
		if j < len(resp.PartItems) {
			pl.Items = resp.PartItems[j]
		}
		loads[gi] = pl
	}
	out := &Output{
		Answers:     answers,
		Skipped:     resp.Skipped,
		Incremental: resp.Incremental,
		GroundStats: resp.GroundStats,
		SolveStats:  resp.SolveStats,
	}
	out.Latency.Convert = time.Duration(resp.ConvertNS)
	out.Latency.Ground = time.Duration(resp.GroundNS)
	out.Latency.Solve = time.Duration(resp.SolveNS)
	out.Latency.Combine = time.Duration(resp.CombineNS)
	// The leg's contribution to the critical path: the remote compute or
	// the wait for the (pipelined) response, whichever dominated — under
	// lockstep the wait is the full round trip, preserving the pre-
	// pipelining semantics.
	out.Latency.Total = max(time.Since(start), time.Duration(resp.TotalNS))
	return out, nil, true
}

// combineLeg aggregates a fallback leg's per-partition outputs the way a
// worker session would: latency maxima, work sums, fast-path ANDs, and one
// combined answer list.
func (dpr *DPR) combineLeg(outs []*Output) *Output {
	leg := &Output{Incremental: true}
	leg.SolveStats.FastPath = true
	for _, out := range outs {
		if !out.Incremental {
			leg.Incremental = false
		}
		if !out.SolveStats.FastPath {
			leg.SolveStats.FastPath = false
		}
		if out.Latency.Convert > leg.Latency.Convert {
			leg.Latency.Convert = out.Latency.Convert
		}
		if out.Latency.Ground > leg.Latency.Ground {
			leg.Latency.Ground = out.Latency.Ground
		}
		if out.Latency.Solve > leg.Latency.Solve {
			leg.Latency.Solve = out.Latency.Solve
		}
		if out.Latency.Total > leg.Latency.Total {
			leg.Latency.Total = out.Latency.Total
		}
		leg.GroundStats.Atoms += out.GroundStats.Atoms
		leg.GroundStats.Rules += out.GroundStats.Rules
		leg.GroundStats.CertainFacts += out.GroundStats.CertainFacts
		leg.GroundStats.Iterations += out.GroundStats.Iterations
		leg.SolveStats.Add(out.SolveStats)
		leg.Skipped += out.Skipped
	}
	t0 := time.Now()
	perPartition := make([][]*solve.AnswerSet, len(outs))
	for i, out := range outs {
		perPartition[i] = out.Answers
	}
	leg.Answers = Combine(perPartition, dpr.maxComb())
	leg.Latency.Combine = time.Since(t0)
	leg.Latency.Total += leg.Latency.Combine
	return leg
}

// maybeRotate applies the coordinator-side budget to the answer table after
// a window, mirroring PR.maybeRotate. Live state: the local fallback
// reasoners' grounder state plus the window's answers; the per-session
// decoder caches are invalidated (their mirrored dictionaries re-intern on
// demand, nothing is re-shipped).
func (dpr *DPR) maybeRotate(out *Output) {
	if dpr.budget <= 0 {
		return
	}
	if dpr.tab.NumAtoms() > dpr.budget {
		_ = dpr.rotateWith(out.Answers)
	}
	materializeAnswers(out.Answers)
}

// Rotate compacts the coordinator's answer table immediately, regardless of
// budget — the manual hook, symmetric with R.Rotate/PR.Rotate. Call it
// between windows only (no windows in flight).
func (dpr *DPR) Rotate() error {
	dpr.tab.AdvanceEpoch()
	return dpr.rotateWith(nil)
}

func (dpr *DPR) rotateWith(answers []*solve.AnswerSet) error {
	live := dpr.liveBuf[:0]
	for _, r := range dpr.locals {
		live = r.appendLive(live)
	}
	live = appendAnswerIDs(live, answers, dpr.tab)
	rm, err := dpr.tab.Rotate(live)
	dpr.liveBuf = live[:0]
	if err != nil {
		return err
	}
	for _, r := range dpr.locals {
		r.applyRemap(rm)
	}
	for _, ps := range dpr.sessions {
		if ps.dec != nil {
			ps.dec.InvalidateLocal()
		}
	}
	return remapAnswers(answers, rm, dpr.tab)
}

// Stats returns the coordinator's memory metrics with the transport metrics
// attached (MemoryStats.Transport is non-nil only for distributed engines).
func (dpr *DPR) Stats() MemoryStats {
	ts := dpr.TransportStats()
	return MemoryStats{Budget: dpr.budget, Table: dpr.tab.Stats(), Transport: &ts}
}

// TransportStats aggregates the wire metrics across all worker sessions,
// sessions removed from the fleet included.
func (dpr *DPR) TransportStats() TransportStats {
	ts := TransportStats{
		Rounds:           dpr.rounds,
		Windows:          dpr.windows,
		FullPartWindows:  dpr.fullParts,
		DeltaPartWindows: dpr.deltaParts,
		InFlightSum:      dpr.inFlightSum,
		RemoteWindows:    dpr.removed.remote,
		LocalFallbacks:   dpr.removed.local,
		Redials:          dpr.removed.redials,
		BytesSent:        dpr.removed.sent,
		BytesReceived:    dpr.removed.recv,
		DictRefs:         dpr.removed.refs,
		DictShipped:      dpr.removed.shipped,
		ReqDictRefs:      dpr.removed.reqRefs,
		ReqDictShipped:   dpr.removed.reqShipped,
		Heartbeats:       dpr.heartbeats,
		CircuitOpens:     dpr.removed.opens,
		ChecksumFailures: dpr.removed.crcFails,
	}
	for _, ps := range dpr.sessions {
		ts.RemoteWindows += ps.remote
		ts.LocalFallbacks += ps.local
		ts.Redials += ps.redials
		ts.BytesSent += ps.accSent
		ts.BytesReceived += ps.accRecv
		ts.DictRefs += ps.accRefs
		ts.DictShipped += ps.accShipped
		ts.ReqDictRefs += ps.accReqRefs
		ts.ReqDictShipped += ps.accReqShipped
		ts.CircuitOpens += ps.brk.opens
		ts.ChecksumFailures += ps.accCrcFails
		if ps.client != nil {
			ts.BytesSent += ps.client.BytesSent()
			ts.BytesReceived += ps.client.BytesReceived()
			ts.ChecksumFailures += ps.client.ChecksumFailures()
		}
		if ps.dec != nil {
			ts.DictRefs += ps.dec.Refs()
			ts.DictShipped += ps.dec.Shipped()
		}
		if ps.reqEnc != nil {
			ts.ReqDictRefs += ps.reqEnc.Refs()
			ts.ReqDictShipped += ps.reqEnc.Shipped()
		}
		ts.WorkerRotations += ps.workerRotations
		ts.WorkerLiveAtoms += ps.workerLiveAtoms
	}
	return ts
}

// PartitionLoads returns the per-partition load rows of the most recently
// collected window (nil before the first Collect). The slice is reused
// across windows; copy it to retain.
func (dpr *DPR) PartitionLoads() []PartitionLoad { return dpr.lastLoads }

// RebalanceStats returns the adaptive rebalancer's counters (zero value
// when DPROptions.Rebalance was nil — joins and leaves still count).
func (dpr *DPR) RebalanceStats() RebalanceStats {
	if dpr.rebal == nil {
		return dpr.staticRebal
	}
	st := dpr.rebal.stats
	st.Joins += dpr.staticRebal.Joins
	st.Leaves += dpr.staticRebal.Leaves
	return st
}

// Workers lists the current worker addresses in session order.
func (dpr *DPR) Workers() []string {
	out := make([]string, len(dpr.sessions))
	for i, ps := range dpr.sessions {
		out[i] = ps.addr
	}
	return out
}

// AddWorker grows the fleet with one worker between windows (no windows may
// be in flight): the new session joins the assignment immediately via a
// balanced re-layout, and the sessions whose partitions move are retired so
// their next window redials, reships full sub-windows, and replays
// dictionaries — answers are never dropped, the join costs one full-window
// ship on the affected sessions.
func (dpr *DPR) AddWorker(addr string) error {
	if len(dpr.pending) > 0 {
		return fmt.Errorf("reasoner: %d window(s) in flight; Collect before AddWorker", len(dpr.pending))
	}
	for _, ps := range dpr.sessions {
		if ps.addr == addr {
			return fmt.Errorf("reasoner: worker %s already in the fleet", addr)
		}
	}
	dpr.sessions = append(dpr.sessions, dpr.newSession(addr))
	dpr.staticRebal.Joins++
	return dpr.applyLayout(dpr.balancedAssign())
}

// RemoveWorker shrinks the fleet between windows: the worker's partitions
// are reassigned to the remaining sessions (full-window reship on the next
// window), its wire counters are folded into the DPR totals so
// TransportStats survive the departure, and its session is closed. The last
// worker cannot be removed.
func (dpr *DPR) RemoveWorker(addr string) error {
	if len(dpr.pending) > 0 {
		return fmt.Errorf("reasoner: %d window(s) in flight; Collect before RemoveWorker", len(dpr.pending))
	}
	if len(dpr.sessions) == 1 {
		return fmt.Errorf("reasoner: cannot remove the last worker")
	}
	idx := -1
	for i, ps := range dpr.sessions {
		if ps.addr == addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("reasoner: worker %s not in the fleet", addr)
	}
	ps := dpr.sessions[idx]
	ps.retire()
	dpr.removed.remote += ps.remote
	dpr.removed.local += ps.local
	dpr.removed.redials += ps.redials
	dpr.removed.sent += ps.accSent
	dpr.removed.recv += ps.accRecv
	dpr.removed.refs += ps.accRefs
	dpr.removed.shipped += ps.accShipped
	dpr.removed.reqRefs += ps.accReqRefs
	dpr.removed.reqShipped += ps.accReqShipped
	dpr.removed.crcFails += ps.accCrcFails
	dpr.removed.opens += ps.brk.opens
	dpr.sessions = append(dpr.sessions[:idx], dpr.sessions[idx+1:]...)
	dpr.staticRebal.Leaves++
	return dpr.applyLayout(dpr.balancedAssign())
}

// balancedAssign computes a partition→session assignment by longest-
// processing-time greedy packing: partitions sorted by observed load
// (EWMA-smoothed when the rebalancer runs, last-window items otherwise,
// uniform before the first window), heaviest first, each onto the least
// loaded session. Deterministic: ties break on lower index.
func (dpr *DPR) balancedAssign() []int {
	n := dpr.part.NumPartitions()
	weights := make([]float64, n)
	for p := range weights {
		weights[p] = 1
	}
	if dpr.rebal != nil && len(dpr.rebal.loadEwma) == n {
		copy(weights, dpr.rebal.loadEwma)
	} else if len(dpr.lastLoads) == n {
		for p, pl := range dpr.lastLoads {
			weights[p] = float64(pl.Items) + 1
		}
	}
	return assignLPT(weights, len(dpr.sessions))
}

// assignLPT packs n weighted partitions onto k bins, heaviest first onto
// the least loaded bin.
func assignLPT(weights []float64, k int) []int {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	load := make([]float64, k)
	assign := make([]int, len(weights))
	for _, p := range order {
		best := 0
		for s := 1; s < k; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		assign[p] = best
		load[best] += weights[p]
	}
	return assign
}

// applyLayout installs a partition→session assignment between windows. When
// the partitioner's partition count changed (a split), the local fallback
// reasoners are rebuilt against the shared coordinator table first. Sessions
// whose hosted-partition list changes are retired: the next window redials
// them with the new partition count, ships full sub-windows, and replays the
// request dictionary — the PR 4/6 session machinery, no new wire protocol.
func (dpr *DPR) applyLayout(assign []int) error {
	if len(dpr.pending) > 0 {
		return fmt.Errorf("reasoner: %d window(s) in flight; layout changes happen between windows", len(dpr.pending))
	}
	n := dpr.part.NumPartitions()
	if len(assign) != n {
		return fmt.Errorf("reasoner: layout of %d partitions for a %d-partition partitioner", len(assign), n)
	}
	newParts := make([][]int, len(dpr.sessions))
	for p, si := range assign {
		if si < 0 || si >= len(dpr.sessions) {
			return fmt.Errorf("reasoner: partition %d assigned to session %d of %d", p, si, len(dpr.sessions))
		}
		newParts[si] = append(newParts[si], p)
	}
	if n != len(dpr.locals) {
		locals := make([]*R, 0, n)
		for i := 0; i < n; i++ {
			r, err := NewR(dpr.cfg)
			if err != nil {
				return err
			}
			locals = append(locals, r)
		}
		dpr.locals = locals
	}
	for si, ps := range dpr.sessions {
		if slices.Equal(ps.parts, newParts[si]) {
			continue
		}
		ps.retire()
		ps.parts = newParts[si]
		ps.base = nil
	}
	return nil
}
