// Coordinator side of the distributed reasoner: DPR ships each window's
// partitions to remote workers over internal/transport and re-interns the
// wire-form answers through cached per-worker dictionaries.

package reasoner

import (
	"fmt"
	"sync"
	"time"

	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/solve"
	"streamrule/internal/rdf"
	"streamrule/internal/transport"
)

// DPROptions configures the distributed parallel reasoner.
type DPROptions struct {
	// Workers lists worker addresses (host:port). Partitions are assigned
	// round-robin: partition i opens its session against
	// Workers[i mod len(Workers)], so one worker process may host several
	// partition sessions.
	Workers []string
	// ProgramSource is the ASP program text shipped to workers in the
	// session handshake (workers are program-agnostic; reasoner.Config
	// holds only the parsed form).
	ProgramSource string
	// StragglerTimeout bounds one remote round (ship window, reason,
	// receive answers). A partition that misses it is processed locally
	// and its session is redialed for the next window. 0 = 10s.
	StragglerTimeout time.Duration
	// DialTimeout bounds session establishment (0 = transport default).
	DialTimeout time.Duration
	// MaxFrame bounds a protocol frame (0 = transport.DefaultMaxFrame).
	MaxFrame int
}

// TransportStats aggregates the distributed reasoner's wire metrics across
// all partition sessions since construction.
type TransportStats struct {
	// RemoteWindows counts partition windows answered by a worker;
	// LocalFallbacks counts partition windows processed locally because the
	// session was down, timed out, or desynchronized.
	RemoteWindows, LocalFallbacks int64
	// Redials counts session re-establishments after a transport failure
	// (the initial dials are not counted).
	Redials int64
	// BytesSent/BytesReceived are cumulative wire bytes across sessions,
	// redials included.
	BytesSent, BytesReceived int64
	// DictRefs counts symbol/predicate/term references resolved through the
	// per-worker dictionaries while decoding answers; DictShipped counts
	// the dictionary entries that had to be shipped in deltas. Their ratio
	// is the dictionary hit rate — on a repeating vocabulary it approaches
	// 1 because every symbol crosses the wire exactly once.
	DictRefs, DictShipped int64
	// WorkerRotations sums the table rotations last reported by each live
	// worker session, and WorkerLiveAtoms their live interned atoms — the
	// remote counterpart of MemoryStats.Table for budget sizing.
	WorkerRotations, WorkerLiveAtoms int64
}

// DictHitRate returns the fraction of dictionary references served without
// shipping a new entry (0 when nothing was decoded yet).
func (s TransportStats) DictHitRate() float64 {
	if s.DictRefs == 0 {
		return 0
	}
	return 1 - float64(s.DictShipped)/float64(s.DictRefs)
}

// partitionSession is one partition's remote leg: a transport client plus
// the session's dictionary decoder. Counters of dead clients/decoders are
// folded into the accumulators on replacement so session totals survive
// redials.
type partitionSession struct {
	addr   string
	client *transport.Client
	dec    *intern.WireDecoder

	accSent, accRecv       int64
	accRefs, accShipped    int64
	redials, remote, local int64
	// Last worker-side table snapshot seen in a response.
	workerRotations, workerLiveAtoms int64
	// Dial backoff: after a failed dial the session is skipped (immediate
	// local fallback) until retryAt, with the delay doubling per
	// consecutive failure — an unreachable worker must cost the pipeline
	// local-processing latency, not a dial timeout per window.
	dialFails int
	retryAt   time.Time
}

// retire folds the live client/decoder counters into the accumulators and
// drops the connection.
func (ps *partitionSession) retire() {
	if ps.client != nil {
		ps.accSent += ps.client.BytesSent()
		ps.accRecv += ps.client.BytesReceived()
		ps.client.Close()
		ps.client = nil
	}
	if ps.dec != nil {
		ps.accRefs += ps.dec.Refs()
		ps.accShipped += ps.dec.Shipped()
		ps.dec = nil
	}
}

// DPR is the distributed parallel reasoner: the partitioning and combining
// handlers of PR with the k reasoner copies running on remote workers. Each
// partition holds one session against a worker; windows are shipped as
// plain triples and answers come back in portable wire form, re-interned
// into the coordinator's table through a cached per-worker dictionary so a
// steady-state window ships only symbols never seen before.
//
// Every partition also keeps a local fallback reasoner: when a session is
// down, times out (straggler), or desynchronizes, the partition is
// processed in-process for that window — answers are identical either way,
// only latency differs — and the session is redialed behind the scenes.
// Workers run with the configured MemoryBudget (each session owns a
// private, rotating table); the coordinator applies the same budget to its
// own answer table.
type DPR struct {
	part Partitioner
	opts DPROptions

	tab      *intern.Table
	locals   []*R
	sessions []*partitionSession

	// MaxCombinations caps the answer-set cross product (see PR).
	MaxCombinations int

	budget  int
	liveBuf []intern.AtomID
	hello   transport.Hello
}

// NewDPR builds a distributed reasoner: one partition session per partition
// of the plan, assigned round-robin over the worker addresses. Construction
// fails when no worker is reachable (a partially reachable fleet degrades
// to local fallback per partition instead).
func NewDPR(cfg Config, part Partitioner, opts DPROptions) (*DPR, error) {
	if part == nil {
		return nil, fmt.Errorf("reasoner: nil partitioner")
	}
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("reasoner: no worker addresses")
	}
	if opts.ProgramSource == "" {
		return nil, fmt.Errorf("reasoner: DPR needs the program source to ship to workers")
	}
	if opts.StragglerTimeout <= 0 {
		opts.StragglerTimeout = 10 * time.Second
	}
	n := part.NumPartitions()
	if n < 1 {
		return nil, fmt.Errorf("reasoner: partitioner yields %d partitions", n)
	}

	dpr := &DPR{part: part, opts: opts, budget: cfg.MemoryBudget}
	// The coordinator owns a private table for decoded answers and local
	// fallbacks; budget rotation is coordinated here (workers rotate their
	// own tables independently).
	if cfg.GroundOpts.Intern == nil {
		cfg.GroundOpts.Intern = intern.NewTable()
	}
	dpr.tab = cfg.GroundOpts.Intern
	cfg.MemoryBudget = 0
	for i := 0; i < n; i++ {
		r, err := NewR(cfg)
		if err != nil {
			return nil, err
		}
		dpr.locals = append(dpr.locals, r)
	}
	dpr.hello = transport.Hello{
		Program:           opts.ProgramSource,
		Inpre:             cfg.Inpre,
		Arities:           map[string]int(cfg.Arities),
		OutputPreds:       cfg.OutputPreds,
		IncludeInputFacts: cfg.IncludeInputFacts,
		MaxModels:         cfg.SolveOpts.MaxModels,
		NaivePropagation:  cfg.SolveOpts.NaivePropagation,
		MaxAtoms:          cfg.GroundOpts.MaxAtoms,
		MemoryBudget:      dpr.budget,
	}

	reachable := false
	for i := 0; i < n; i++ {
		ps := &partitionSession{addr: opts.Workers[i%len(opts.Workers)]}
		if err := dpr.dial(ps); err == nil {
			reachable = true
		}
		dpr.sessions = append(dpr.sessions, ps)
	}
	if !reachable {
		dpr.Close()
		return nil, fmt.Errorf("reasoner: none of the %d workers are reachable (first: %s)",
			len(opts.Workers), opts.Workers[0])
	}
	return dpr, nil
}

// dial (re-)establishes one partition session with a fresh dictionary.
func (dpr *DPR) dial(ps *partitionSession) error {
	ps.retire()
	hello := dpr.hello
	c, err := transport.Dial(ps.addr, &hello, transport.ClientOptions{
		DialTimeout: dpr.opts.DialTimeout,
		MaxFrame:    dpr.opts.MaxFrame,
	})
	if err != nil {
		return err
	}
	ps.client = c
	ps.dec = intern.NewWireDecoder(dpr.tab)
	return nil
}

// NumPartitions returns the number of partitions (= sessions).
func (dpr *DPR) NumPartitions() int { return len(dpr.locals) }

// Close tears down every partition session. The DPR must not be used
// afterwards.
func (dpr *DPR) Close() {
	for _, ps := range dpr.sessions {
		ps.retire()
	}
}

// Process partitions the window, reasons over the partitions on the
// workers (grounding from scratch), and combines the answers.
func (dpr *DPR) Process(window []rdf.Triple) (*Output, error) {
	return dpr.process(window, true)
}

// ProcessDelta is the incremental Process for overlapping windows: each
// worker session maintains its partition's grounding across windows,
// deriving its own partition-level delta (stream deltas cannot be routed
// through duplicating partitioners — same reasoning as PR.ProcessDelta).
// A nil delta degrades to the from-scratch Process.
func (dpr *DPR) ProcessDelta(window []rdf.Triple, d *Delta) (*Output, error) {
	if d == nil {
		return dpr.Process(window)
	}
	return dpr.process(window, false)
}

func (dpr *DPR) process(window []rdf.Triple, scratch bool) (*Output, error) {
	start := time.Now()
	if dpr.budget > 0 {
		dpr.tab.AdvanceEpoch()
	}
	out := &Output{}

	t0 := time.Now()
	parts, skipped := dpr.part.Partition(window)
	out.Skipped = skipped
	out.Latency.Partition = time.Since(t0)
	for _, p := range parts {
		out.PartitionSizes = append(out.PartitionSizes, len(p))
		out.RoutedItems += len(p)
	}

	results := make([]*Output, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = dpr.processPartition(i, parts[i], scratch)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out.Incremental = len(results) > 0
	// The aggregate is on the fast path only when every partition was.
	out.SolveStats.FastPath = len(results) > 0
	var maxTotal time.Duration
	for _, res := range results {
		if !res.Incremental {
			out.Incremental = false
		}
		if !res.SolveStats.FastPath {
			out.SolveStats.FastPath = false
		}
		if res.Latency.Total > maxTotal {
			maxTotal = res.Latency.Total
		}
		if res.Latency.Convert > out.Latency.Convert {
			out.Latency.Convert = res.Latency.Convert
		}
		if res.Latency.Ground > out.Latency.Ground {
			out.Latency.Ground = res.Latency.Ground
		}
		if res.Latency.Solve > out.Latency.Solve {
			out.Latency.Solve = res.Latency.Solve
		}
		out.GroundStats.Atoms += res.GroundStats.Atoms
		out.GroundStats.Rules += res.GroundStats.Rules
		out.GroundStats.CertainFacts += res.GroundStats.CertainFacts
		out.GroundStats.Iterations += res.GroundStats.Iterations
		out.SolveStats.Add(res.SolveStats)
	}

	t0 = time.Now()
	max := dpr.MaxCombinations
	if max <= 0 {
		max = DefaultMaxCombinations
	}
	perPartition := make([][]*solve.AnswerSet, len(results))
	for i, res := range results {
		perPartition[i] = res.Answers
	}
	out.Answers = Combine(perPartition, max)
	out.Latency.Combine = time.Since(t0)

	// Coordinated rotation of the coordinator's answer table, mirroring PR.
	t0 = time.Now()
	dpr.maybeRotate(out)
	rotate := time.Since(t0)

	out.Latency.Total = time.Since(start)
	out.Latency.CriticalPath = out.Latency.Partition + maxTotal + out.Latency.Combine + rotate
	return out, nil
}

// processPartition reasons over one partition: remote round first, local
// fallback when the session cannot serve the window.
func (dpr *DPR) processPartition(i int, part []rdf.Triple, scratch bool) (*Output, error) {
	ps := dpr.sessions[i]
	out, err, usable := dpr.tryRemote(ps, part, scratch)
	if usable {
		ps.remote++
		return out, err
	}
	ps.local++
	if scratch {
		return dpr.locals[i].Process(part)
	}
	return dpr.locals[i].ProcessAuto(part)
}

// tryRemote runs one remote round. usable=false means the partition must
// fall back locally (session down or transport failure); usable=true with a
// non-nil error reports a worker-side processing error, which is terminal
// for the window exactly like a local partition error would be.
func (dpr *DPR) tryRemote(ps *partitionSession, part []rdf.Triple, scratch bool) (*Output, error, bool) {
	if ps.client == nil || ps.client.Broken() {
		if !ps.retryAt.IsZero() && time.Now().Before(ps.retryAt) {
			return nil, nil, false
		}
		if err := dpr.dial(ps); err != nil {
			ps.dialFails++
			backoff := min(time.Second<<min(ps.dialFails-1, 5), 30*time.Second)
			ps.retryAt = time.Now().Add(backoff)
			return nil, nil, false
		}
		ps.dialFails = 0
		ps.retryAt = time.Time{}
		ps.redials++
	}
	start := time.Now()
	resp, err := ps.client.Round(&transport.WindowReq{Scratch: scratch, Window: part}, dpr.opts.StragglerTimeout)
	if err != nil {
		if re, ok := err.(*transport.RemoteError); ok {
			// The worker reasoner failed on this window (e.g. the grounder's
			// atom limit): surface it — the local engine would fail the same
			// way, and masking it behind a fallback would hide program bugs.
			return nil, fmt.Errorf("reasoner: worker %s: %s", ps.addr, re.Msg), true
		}
		ps.retire()
		return nil, nil, false
	}

	if err := ps.dec.Apply(&resp.Dict); err != nil {
		// Dictionary desync: the session cannot be trusted any more. Drop it
		// and serve this window locally; the redial replays the dictionary.
		ps.retire()
		return nil, nil, false
	}
	answers := make([]*solve.AnswerSet, len(resp.Answers))
	for j, ws := range resp.Answers {
		ids, err := ps.dec.DecodeSet(ws, nil)
		if err != nil {
			ps.retire()
			return nil, nil, false
		}
		answers[j] = solve.FromIDs(dpr.tab, ids)
	}

	ps.workerRotations = int64(resp.Rotations)
	ps.workerLiveAtoms = int64(resp.LiveAtoms)
	out := &Output{
		Answers:     answers,
		Skipped:     resp.Skipped,
		Incremental: resp.Incremental,
		GroundStats: resp.GroundStats,
		SolveStats:  resp.SolveStats,
	}
	out.Latency.Convert = time.Duration(resp.ConvertNS)
	out.Latency.Ground = time.Duration(resp.GroundNS)
	out.Latency.Solve = time.Duration(resp.SolveNS)
	// The partition's contribution to the critical path is the full round
	// trip as observed here: worker compute plus serialization and wire.
	out.Latency.Total = time.Since(start)
	return out, nil, true
}

// maybeRotate applies the coordinator-side budget to the answer table after
// a window, mirroring PR.maybeRotate. Live state: the local fallback
// reasoners' grounder state plus the window's answers; the per-session
// decoder caches are invalidated (their mirrored dictionaries re-intern on
// demand, nothing is re-shipped).
func (dpr *DPR) maybeRotate(out *Output) {
	if dpr.budget <= 0 {
		return
	}
	if dpr.tab.NumAtoms() > dpr.budget {
		_ = dpr.rotateWith(out.Answers)
	}
	materializeAnswers(out.Answers)
}

// Rotate compacts the coordinator's answer table immediately, regardless of
// budget — the manual hook, symmetric with R.Rotate/PR.Rotate. Call it
// between windows only.
func (dpr *DPR) Rotate() error {
	dpr.tab.AdvanceEpoch()
	return dpr.rotateWith(nil)
}

func (dpr *DPR) rotateWith(answers []*solve.AnswerSet) error {
	live := dpr.liveBuf[:0]
	for _, r := range dpr.locals {
		live = r.appendLive(live)
	}
	live = appendAnswerIDs(live, answers, dpr.tab)
	rm, err := dpr.tab.Rotate(live)
	dpr.liveBuf = live[:0]
	if err != nil {
		return err
	}
	for _, r := range dpr.locals {
		r.applyRemap(rm)
	}
	for _, ps := range dpr.sessions {
		if ps.dec != nil {
			ps.dec.InvalidateLocal()
		}
	}
	return remapAnswers(answers, rm, dpr.tab)
}

// Stats returns the coordinator's memory metrics with the transport metrics
// attached (MemoryStats.Transport is non-nil only for distributed engines).
func (dpr *DPR) Stats() MemoryStats {
	ts := dpr.TransportStats()
	return MemoryStats{Budget: dpr.budget, Table: dpr.tab.Stats(), Transport: &ts}
}

// TransportStats aggregates the wire metrics across all partition sessions.
func (dpr *DPR) TransportStats() TransportStats {
	var ts TransportStats
	for _, ps := range dpr.sessions {
		ts.RemoteWindows += ps.remote
		ts.LocalFallbacks += ps.local
		ts.Redials += ps.redials
		ts.BytesSent += ps.accSent
		ts.BytesReceived += ps.accRecv
		ts.DictRefs += ps.accRefs
		ts.DictShipped += ps.accShipped
		if ps.client != nil {
			ts.BytesSent += ps.client.BytesSent()
			ts.BytesReceived += ps.client.BytesReceived()
		}
		if ps.dec != nil {
			ts.DictRefs += ps.dec.Refs()
			ts.DictShipped += ps.dec.Shipped()
		}
		ts.WorkerRotations += ps.workerRotations
		ts.WorkerLiveAtoms += ps.workerLiveAtoms
	}
	return ts
}
