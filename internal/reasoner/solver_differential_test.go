package reasoner

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"streamrule/internal/asp/parser"
	"streamrule/internal/progen"
)

// TestSolverDifferentialWorklistVsNaive is the end-to-end oracle of the
// counter/worklist solver rewrite: randomized programs covering every rule
// class the solver handles (stratified, recursive, constraint, choice,
// disjunctive, residual) × randomized streams × window shapes × {R, PR},
// asserting that the event-driven propagation engine produces answer sets
// identical (as sorted multisets) to the legacy NaivePropagation rescan
// engine on every window.
//
// PR runs only the residual class: its programs have exactly 2 answer sets
// per partition by construction, so the combining handler's cross-product
// cap can never truncate — with an unpinned choice or disjunction the two
// engines could legitimately enumerate different subsets once a cap bites.
func TestSolverDifferentialWorklistVsNaive(t *testing.T) {
	classes := []struct {
		name string
		cfg  progen.Config
		pr   bool
	}{
		{"stratified", progen.Config{}, false},
		{"recursive", progen.Config{Recursion: true}, false},
		{"constraints", progen.Config{Constraints: true}, false},
		{"choice-or-loop", progen.Config{Ineligible: true}, false},
		{"disjunctive", progen.Config{Disjunctive: true}, false},
		// Residual alone: adding stratified Constraints can make whole
		// windows inconsistent at grounding (certain-level violation), which
		// never engages the search at all; the residual component carries
		// its own pinned constraints.
		{"residual", progen.Config{Residual: true}, true},
		{"residual-recursive", progen.Config{Residual: true, Recursion: true}, true},
	}
	type winCfg struct{ size, step int }
	windows := []winCfg{
		{60, 20}, // sliding, 3x overlap
		{80, 80}, // tumbling
		{50, 10}, // sliding, 5x overlap
	}
	for _, class := range classes {
		for seed := int64(0); seed < 3; seed++ {
			rnd := rand.New(rand.NewSource(seed*31 + 7))
			p := progen.New(rnd, class.cfg)
			prog, err := parser.Parse(p.Src)
			if err != nil {
				t.Fatalf("%s seed %d: parse: %v\n%s", class.name, seed, err, p.Src)
			}
			baseCfg := Config{Program: prog, Inpre: p.Inpre, Arities: p.Arities}
			naiveCfg := baseCfg
			naiveCfg.SolveOpts.NaivePropagation = true

			for _, wc := range windows {
				label := fmt.Sprintf("%s seed %d w%d/s%d", class.name, seed, wc.size, wc.step)
				stream := p.Stream(rnd, class.cfg, wc.size+3*wc.step)
				emissions := emitWindows(stream, wc.size, wc.step)

				// R: whole-window reasoner, full enumeration.
				rNew, err := NewR(baseCfg)
				if err != nil {
					t.Fatal(err)
				}
				rOld, err := NewR(naiveCfg)
				if err != nil {
					t.Fatal(err)
				}
				sawResidual := false
				for wi, wd := range emissions {
					got, err := rNew.Process(wd.Window)
					if err != nil {
						t.Fatalf("%s window %d: worklist: %v", label, wi, err)
					}
					want, err := rOld.Process(wd.Window)
					if err != nil {
						t.Fatalf("%s window %d: naive: %v", label, wi, err)
					}
					gs, ws := answerSigs(got.Answers), answerSigs(want.Answers)
					if !slices.Equal(gs, ws) {
						t.Fatalf("%s window %d: answer sets diverge\nworklist: %v\nnaive:    %v",
							label, wi, renderAnswers(got.Answers), renderAnswers(want.Answers))
					}
					if got.SolveStats.StabilityChecks != want.SolveStats.StabilityChecks {
						t.Fatalf("%s window %d: stability checks diverge: worklist %d, naive %d",
							label, wi, got.SolveStats.StabilityChecks, want.SolveStats.StabilityChecks)
					}
					if !got.SolveStats.FastPath {
						sawResidual = true
						if want.SolveStats.RuleVisits < got.SolveStats.RuleVisits {
							t.Errorf("%s window %d: worklist visited more rules (%d) than naive (%d)",
								label, wi, got.SolveStats.RuleVisits, want.SolveStats.RuleVisits)
						}
					}
				}
				if class.cfg.Residual && !sawResidual {
					t.Errorf("%s: residual class never left the fast path", label)
				}

				if !class.pr {
					continue
				}
				// PR: partitioned reasoner — each partition solves the full
				// program on its sub-window; combined answers must agree too.
				prNew, err := NewPR(baseCfg, NewRandomPartitioner(3, seed))
				if err != nil {
					t.Fatal(err)
				}
				prOld, err := NewPR(naiveCfg, NewRandomPartitioner(3, seed))
				if err != nil {
					t.Fatal(err)
				}
				for wi, wd := range emissions {
					got, err := prNew.Process(wd.Window)
					if err != nil {
						t.Fatalf("%s PR window %d: worklist: %v", label, wi, err)
					}
					want, err := prOld.Process(wd.Window)
					if err != nil {
						t.Fatalf("%s PR window %d: naive: %v", label, wi, err)
					}
					gs, ws := answerSigs(got.Answers), answerSigs(want.Answers)
					if !slices.Equal(gs, ws) {
						t.Fatalf("%s PR window %d: answer sets diverge\nworklist: %v\nnaive:    %v",
							label, wi, renderAnswers(got.Answers), renderAnswers(want.Answers))
					}
				}
			}
		}
	}
}
