// Memory management for unbounded streams: epoch advance, budget-triggered
// interning-table rotation, and the remapping of every piece of
// cross-window reasoner state that holds interned IDs.
//
// A reasoner with Config.MemoryBudget > 0 owns a private interning table
// (NewR/NewPR arrange that). Each window advances the table's epoch; after
// the window is processed, the table is rotated when its atom count exceeds
// the budget. The live set passed to intern.Table.Rotate is everything the
// reasoner still references: the grounder's maintained stores and program
// facts, the fact-multiset reference counts of the incremental path, and the
// answer sets of the output about to be returned (so callers keep valid
// IDs). PR coordinates a single rotation for its k partition reasoners —
// they share one table, so rotation may only run after all have quiesced.

package reasoner

import (
	"fmt"

	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/solve"
)

// MemoryStats surfaces the memory metrics of a reasoner: the configured
// budget and a snapshot of its interning table (live/peak entries,
// rotations, cumulative remap time).
type MemoryStats struct {
	// Budget is the configured MemoryBudget in table entries (0 = no
	// entry-count bound).
	Budget int
	// BudgetBytes is the configured MemoryBudgetBytes (0 = no byte bound).
	BudgetBytes int64
	// Table is the snapshot of the reasoner's interning table. For the
	// distributed reasoner it describes the coordinator's answer table;
	// worker tables are remote (see WindowResp.LiveAtoms for their
	// per-window snapshots).
	Table intern.TableStats
	// Transport carries the wire metrics of a distributed reasoner (bytes
	// shipped, dictionary hit rate, fallbacks); nil for in-process engines.
	Transport *TransportStats
}

// Stats returns the reasoner's memory metrics.
func (r *R) Stats() MemoryStats {
	return MemoryStats{Budget: r.cfg.MemoryBudget, BudgetBytes: r.cfg.MemoryBudgetBytes, Table: r.tab.Stats()}
}

// Stats returns the parallel reasoner's memory metrics. All partition
// reasoners share one table, so a single snapshot describes them all.
func (pr *PR) Stats() MemoryStats {
	return MemoryStats{Budget: pr.budget, BudgetBytes: pr.budgetBytes, Table: pr.reasoners[0].tab.Stats()}
}

// overBudget reports whether a table exceeds either configured bound — the
// entry-count knob, the byte knob, or both.
func overBudget(tab *intern.Table, entries int, bytes int64) bool {
	if entries > 0 && tab.NumAtoms() > entries {
		return true
	}
	return bytes > 0 && tab.ApproxBytes() > bytes
}

// beginWindow opens a new table epoch for a budgeted reasoner, so that
// "touched in the current epoch" coincides with "referenced by this window".
func (r *R) beginWindow() {
	if r.cfg.budgeted() {
		r.tab.AdvanceEpoch()
	}
}

func (pr *PR) beginWindow() {
	if pr.budget > 0 || pr.budgetBytes > 0 {
		pr.reasoners[0].tab.AdvanceEpoch()
	}
}

// maybeRotate rotates the table after a window when the budget is exceeded.
// Rotation failures (a shared default table, concurrent misuse) disable
// nothing: the reasoner keeps running correctly, merely without eviction.
//
// The answer sets being returned are remapped, so their IDs stay valid
// until the NEXT window's rotation. Sets a caller retains across windows
// cannot be remapped (the reasoner no longer tracks them), so budgeted
// windows additionally materialize their answers eagerly: the textual
// atoms, keys, and key-based operations of retained sets remain valid
// forever; only their raw IDs go stale.
func (r *R) maybeRotate(out *Output) {
	if !r.cfg.budgeted() {
		return
	}
	if overBudget(r.tab, r.cfg.MemoryBudget, r.cfg.MemoryBudgetBytes) {
		_ = r.rotateWith(out.Answers)
	}
	materializeAnswers(out.Answers)
}

func (pr *PR) maybeRotate(out *Output) {
	if pr.budget <= 0 && pr.budgetBytes <= 0 {
		return
	}
	if overBudget(pr.reasoners[0].tab, pr.budget, pr.budgetBytes) {
		_ = pr.rotateWith(out.Answers)
	}
	materializeAnswers(out.Answers)
}

// materializeAnswers forces the lazy atom/key rendering of the answer sets
// about to be returned, detaching their user-visible content from future
// table rotations.
func materializeAnswers(answers []*solve.AnswerSet) {
	for _, a := range answers {
		a.Atoms()
	}
}

// Rotate compacts the reasoner's interning table to its live entries
// immediately, regardless of budget — the manual hook for cadence-based
// eviction. It opens a fresh epoch first (between windows nothing is in
// flight, so only the reported live state is kept) and invalidates the
// interned IDs of previously returned outputs (their materialized atoms
// remain valid); call it between windows only. The table must be private
// (ground.Options.Intern): rotating the process-wide default table is
// refused.
func (r *R) Rotate() error {
	r.tab.AdvanceEpoch()
	return r.rotateWith(nil)
}

// Rotate is the manual rotation hook of the parallel reasoner; see R.Rotate.
// It must not run concurrently with Process/ProcessDelta.
func (pr *PR) Rotate() error {
	pr.reasoners[0].tab.AdvanceEpoch()
	return pr.rotateWith(nil)
}

// rotateWith rotates the table keeping the reasoner's live state plus the
// given answer sets, then remaps everything, answers included.
func (r *R) rotateWith(answers []*solve.AnswerSet) error {
	live := r.appendLive(r.liveBuf[:0])
	live = appendAnswerIDs(live, answers, r.tab)
	rm, err := r.tab.Rotate(live)
	r.liveBuf = live[:0]
	if err != nil {
		return err
	}
	r.applyRemap(rm)
	return remapAnswers(answers, rm, r.tab)
}

func (pr *PR) rotateWith(answers []*solve.AnswerSet) error {
	tab := pr.reasoners[0].tab
	live := pr.liveBuf[:0]
	for _, r := range pr.reasoners {
		live = r.appendLive(live)
	}
	live = appendAnswerIDs(live, answers, tab)
	rm, err := tab.Rotate(live)
	pr.liveBuf = live[:0]
	if err != nil {
		return err
	}
	for _, r := range pr.reasoners {
		r.applyRemap(rm)
	}
	return remapAnswers(answers, rm, tab)
}

// appendAnswerIDs collects the IDs of the answer sets that live on the
// rotating table. Sets on a foreign table (possible only through exotic
// custom combiners) are unaffected by the rotation and are left alone.
func appendAnswerIDs(dst []intern.AtomID, answers []*solve.AnswerSet, tab *intern.Table) []intern.AtomID {
	for _, a := range answers {
		if a.Table() == tab {
			dst = append(dst, a.IDs()...)
		}
	}
	return dst
}

// appendLive collects every atom ID this reasoner references across windows.
func (r *R) appendLive(dst []intern.AtomID) []intern.AtomID {
	dst = r.inst.LiveAtomIDs(dst)
	if r.incLive {
		for id := range r.factRef {
			dst = append(dst, id)
		}
	}
	return dst
}

// applyRemap rewrites the reasoner's cross-window state to the rotated IDs.
func (r *R) applyRemap(rm *intern.Remap) {
	if r.inst.Remap(rm) {
		// The grounder dropped its incremental state; the next window must
		// re-seed rather than Update.
		r.incLive = false
	}
	if r.incLive {
		next := r.refScratch
		if next == nil {
			next = make(map[intern.AtomID]int32, len(r.factRef))
		}
		clear(next)
		ok := true
		for id, c := range r.factRef {
			nid, live := rm.Atom(id)
			if !live {
				ok = false
				break
			}
			next[nid] = c
		}
		if ok {
			r.factRef, r.refScratch = next, r.factRef
		} else {
			// The refcounts listed their keys as live, so a miss means the
			// rotation was driven by someone else's live set; fall back to
			// re-seeding.
			r.incLive = false
		}
	}
	if r.carry != nil {
		// Carried clauses referencing rotated atoms are rewritten; clauses
		// touching evicted atoms are dropped (their premises are gone).
		r.carry.Remap(rm)
	}
	// Per-window ID scratch is stale after a rotation.
	r.factbuf = r.factbuf[:0]
	r.addBuf, r.retBuf = r.addBuf[:0], r.retBuf[:0]
	r.addSet, r.retSet = r.addSet[:0], r.retSet[:0]
	// The input/output projection sets are keyed by predicate-name symbols;
	// re-intern them from the configured names (predicate-name symbols are
	// pinned by rotation, so this is a pure re-keying, never growth).
	inpre := make(map[intern.SymID]bool, len(r.cfg.Inpre))
	for _, p := range r.cfg.Inpre {
		inpre[r.tab.Sym(p)] = true
	}
	r.inpre = inpre
	if r.outputs != nil {
		outputs := make(map[intern.SymID]bool, len(r.cfg.OutputPreds))
		for _, p := range r.cfg.OutputPreds {
			outputs[r.tab.Sym(p)] = true
		}
		r.outputs = outputs
	}
}

// remapAnswers rewrites the IDs of the answer sets about to be returned
// (skipping sets on a foreign table). Their IDs were part of the live set,
// so a miss indicates concurrent mutation of a set the reasoner still owns.
func remapAnswers(answers []*solve.AnswerSet, rm *intern.Remap, tab *intern.Table) error {
	for _, a := range answers {
		if a.Table() != tab {
			continue
		}
		if !a.Remap(rm) {
			return fmt.Errorf("reasoner: answer set lost atoms in table rotation")
		}
	}
	return nil
}
