package reasoner

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"streamrule/internal/asp/parser"
	"streamrule/internal/atomdep"
	"streamrule/internal/core"
	"streamrule/internal/dfp"
	"streamrule/internal/progen"
	"streamrule/internal/rdf"
	"streamrule/internal/workload"
)

// TestAssignLPT pins the greedy longest-processing-time packer: heavy items
// spread over bins, deterministic under ties, and never worse than the
// trivial all-in-one-bin layout.
func TestAssignLPT(t *testing.T) {
	assign := assignLPT([]float64{8, 1, 1, 1, 1, 4}, 2)
	if len(assign) != 6 {
		t.Fatalf("assign has %d entries, want 6", len(assign))
	}
	loads := make([]float64, 2)
	weights := []float64{8, 1, 1, 1, 1, 4}
	for p, b := range assign {
		if b < 0 || b > 1 {
			t.Fatalf("partition %d assigned to bin %d", p, b)
		}
		loads[b] += weights[p]
	}
	// LPT on {8,4,1,1,1,1} over 2 bins is exactly {8}, {4,1,1,1,1}.
	if max(loads[0], loads[1]) != 8 {
		t.Errorf("LPT packed to loads %v, want max 8", loads)
	}
	// Determinism: same input, same layout.
	again := assignLPT([]float64{8, 1, 1, 1, 1, 4}, 2)
	if !slices.Equal(assign, again) {
		t.Errorf("assignLPT is not deterministic: %v vs %v", assign, again)
	}
}

// TestAdaptivePartitionerFanout pins the fan-out bookkeeping of the runtime
// partitioner: widening a splittable community multiplies partitions,
// CommunityOf inverts the global index, and unsplittable communities refuse.
func TestAdaptivePartitionerFanout(t *testing.T) {
	src := `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inpre := []string{"average_speed", "car_number", "traffic_light"}
	an, err := core.Analyze(prog, inpre, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	arities, err := dfp.InferArities(prog, inpre)
	if err != nil {
		t.Fatal(err)
	}
	keys := atomdep.Analyze(prog, an.Plan)
	ap := NewAdaptivePartitioner(an.Plan, keys, arities)
	base := ap.NumPartitions()
	if base != an.Plan.NumPartitions() {
		t.Fatalf("fresh partitioner has %d partitions, plan has %d", base, an.Plan.NumPartitions())
	}
	split := -1
	for c := 0; c < ap.NumCommunities(); c++ {
		if ap.Splittable(c) {
			split = c
			break
		}
	}
	if split < 0 {
		t.Fatal("single-key program has no splittable community")
	}
	if err := ap.SetFanout(split, 3); err != nil {
		t.Fatalf("SetFanout: %v", err)
	}
	if got := ap.NumPartitions(); got != base+2 {
		t.Errorf("fan-out 3 on one community: %d partitions, want %d", got, base+2)
	}
	for gp := 0; gp < ap.NumPartitions(); gp++ {
		if c := ap.CommunityOf(gp); c < 0 || c >= ap.NumCommunities() {
			t.Errorf("CommunityOf(%d) = %d, out of range", gp, c)
		}
	}
}

// TestAdaptiveDifferentialVsStatic is the adaptive acceptance differential:
// an adaptive DPR with aggressive rebalancing (threshold barely above 1,
// no sustain, every window eligible) must stay answer-identical to a static
// DPR, the in-process PR, and the monolithic R on every window — through
// layout migrations, a worker join at one third of the stream, a worker
// leave at two thirds, and with entry- and byte-based memory budgets
// rotating worker tables underneath. The books must balance at the end:
// every partition window is accounted remote or fallback, exactly once.
func TestAdaptiveDifferentialVsStatic(t *testing.T) {
	// Seeds match TestDifferentialDistributedVsLocal's validated set: PR's
	// community decomposition is the paper's approximation and is only
	// answer-exact on programs where no negation crosses a duplicated cut —
	// these generated programs are pinned by the main differential as exact,
	// so any divergence here is the adaptive machinery's fault, not the
	// plan's.
	programs := []struct {
		name        string
		seed        int64
		cfg         progen.Config
		budget      int
		budgetBytes int64
	}{
		{"flat", 900, progen.Config{Derived: 3}, 0, 0},
		{"negation-heavy", 901, progen.Config{Derived: 5, UnaryInputs: 2, BinaryInputs: 2}, 0, 0},
		{"recursive", 902, progen.Config{Derived: 3, Recursion: true, Consts: 4}, 0, 0},
		{"flat-fresh-budgeted", 905, progen.Config{Derived: 3, Fresh: 0.6}, 96, 0},
		{"flat-fresh-byte-budgeted", 905, progen.Config{Derived: 3, Fresh: 0.6}, 0, 48 << 10},
	}
	workers := startWorkers(t, 3)
	for _, pc := range programs {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			rnd := rand.New(rand.NewSource(pc.seed))
			gp := progen.New(rnd, pc.cfg)
			prog, err := parser.Parse(gp.Src)
			if err != nil {
				t.Fatalf("generated program does not parse: %v\n%s", err, gp.Src)
			}
			cfg := Config{Program: prog, Inpre: gp.Inpre, Arities: dfp.Arities(gp.Arities)}
			var triples []rdf.Triple
			if pc.budget > 0 || pc.budgetBytes > 0 {
				seq := 0
				triples = gp.StreamFresh(rnd, pc.cfg, 160, &seq)
			} else {
				triples = gp.Stream(rnd, pc.cfg, 140)
			}
			analysis, err := core.Analyze(prog, gp.Inpre, 1.0)
			if err != nil {
				t.Skipf("program has no partitioning plan: %v", err)
			}
			keys := atomdep.Analyze(prog, analysis.Plan)
			emissions := emitWindows(triples, 20, 5)

			dprCfg := cfg
			dprCfg.MemoryBudget = pc.budget
			dprCfg.MemoryBudgetBytes = pc.budgetBytes
			adOpts := testDPROptions(gp.Src, workers[:2])
			adOpts.Rebalance = &RebalanceOptions{SkewThreshold: 1.05, Sustain: 1, Cooldown: 1}
			adaptive, err := NewDPR(dprCfg, NewAdaptivePartitioner(analysis.Plan, keys, dfp.Arities(gp.Arities)), adOpts)
			if err != nil {
				t.Fatalf("NewDPR(adaptive): %v", err)
			}
			defer adaptive.Close()
			static, err := NewDPR(dprCfg, NewPlanPartitioner(analysis.Plan), testDPROptions(gp.Src, workers[:2]))
			if err != nil {
				t.Fatalf("NewDPR(static): %v", err)
			}
			defer static.Close()
			prOracle, err := NewPR(cfg, NewPlanPartitioner(analysis.Plan))
			if err != nil {
				t.Fatal(err)
			}
			rOracle, err := NewR(cfg)
			if err != nil {
				t.Fatal(err)
			}

			join, leave := len(emissions)/3, 2*len(emissions)/3
			var legs int64
			for wi, wd := range emissions {
				if wi == join {
					if err := adaptive.AddWorker(workers[2]); err != nil {
						t.Fatalf("window %d: AddWorker: %v", wi, err)
					}
				}
				if wi == leave {
					if err := adaptive.RemoveWorker(workers[0]); err != nil {
						t.Fatalf("window %d: RemoveWorker: %v", wi, err)
					}
				}
				legs += int64(adaptive.NumPartitions())
				var d *Delta
				if wd.Incremental {
					d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
				}
				got, err := adaptive.ProcessDelta(wd.Window, d)
				if err != nil {
					t.Fatalf("window %d: adaptive DPR: %v", wi, err)
				}
				wantStatic, err := static.ProcessDelta(wd.Window, d)
				if err != nil {
					t.Fatalf("window %d: static DPR: %v", wi, err)
				}
				wantPR, err := prOracle.Process(wd.Window)
				if err != nil {
					t.Fatalf("window %d: PR oracle: %v", wi, err)
				}
				wantR, err := rOracle.Process(wd.Window)
				if err != nil {
					t.Fatalf("window %d: R oracle: %v", wi, err)
				}
				gs := answerKeySigs(got.Answers)
				for _, ref := range []struct {
					name string
					sigs []string
				}{
					{"static DPR", answerKeySigs(wantStatic.Answers)},
					{"PR", answerKeySigs(wantPR.Answers)},
					{"R", answerKeySigs(wantR.Answers)},
				} {
					if !slices.Equal(gs, ref.sigs) {
						t.Fatalf("window %d: adaptive DPR diverges from %s (rebalance: %+v)\nadaptive: %v\n%s: %v",
							wi, ref.name, adaptive.RebalanceStats(), gs, ref.name, ref.sigs)
					}
				}
			}

			ts := adaptive.TransportStats()
			if got := ts.RemoteWindows + ts.LocalFallbacks; got != legs {
				t.Errorf("books don't balance: remote %d + fallback %d = %d, want %d partition windows",
					ts.RemoteWindows, ts.LocalFallbacks, got, legs)
			}
			if ts.LocalFallbacks > 0 {
				t.Errorf("%d local fallbacks with healthy workers", ts.LocalFallbacks)
			}
			rs := adaptive.RebalanceStats()
			if rs.Observations == 0 {
				t.Error("rebalancer never observed a window")
			}
			if rs.Joins != 1 || rs.Leaves != 1 {
				t.Errorf("join/leave counters = %d/%d, want 1/1", rs.Joins, rs.Leaves)
			}
			if got := adaptive.Workers(); len(got) != 2 || slices.Contains(got, workers[0]) {
				t.Errorf("fleet after join+leave = %v, want 2 workers without %s", got, workers[0])
			}
		})
	}
}

// skewResidualSrc is a two-community paper-shaped program: the city cluster
// (traffic_jam) and the car cluster (car_fire) share no input predicate, so
// the design-time plan has one partition per cluster — and the car-heavy
// ResidualTraffic skew lands ~80% of every window on one of them.
const skewResidualSrc = `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
car_stopped(C) :- car_speed(C,S), S < 1.
car_fire(C) :- car_in_smoke(C,high), car_stopped(C), car_location(C,L).
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).
`

var skewResidualInpre = []string{
	"average_speed", "car_number", "traffic_light",
	"car_in_smoke", "car_speed", "car_location",
}

// TestAdaptiveSplitsSkewedResidual drives the adaptive DPR over the canned
// skewed+bursty stream: sustained skew must trigger at least one accepted
// community split (migrating work between sessions), the partition count
// must grow past the design-time plan, and every window's answers must stay
// identical to the monolithic R — migrations never drop a window.
func TestAdaptiveSplitsSkewedResidual(t *testing.T) {
	prog, err := parser.Parse(skewResidualSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Program: prog, Inpre: skewResidualInpre,
		OutputPreds: []string{"traffic_jam", "car_fire", "give_notification"}}
	an, err := core.Analyze(prog, skewResidualInpre, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if an.Plan.NumPartitions() < 2 {
		t.Fatalf("fixture plan has %d partitions, want >= 2", an.Plan.NumPartitions())
	}
	arities, err := dfp.InferArities(prog, skewResidualInpre)
	if err != nil {
		t.Fatal(err)
	}
	keys := atomdep.Analyze(prog, an.Plan)

	triples, err := workload.SkewedBurstyStream(11, 2400)
	if err != nil {
		t.Fatal(err)
	}
	emissions := emitWindows(triples, 200, 200)

	workers := startWorkers(t, 4)
	opts := testDPROptions(skewResidualSrc, workers)
	opts.Rebalance = &RebalanceOptions{SkewThreshold: 1.2, Sustain: 1, Cooldown: 1, MaxFanout: 4}
	dpr, err := NewDPR(cfg, NewAdaptivePartitioner(an.Plan, keys, arities), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dpr.Close()
	rOracle, err := NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var legs int64
	for wi, wd := range emissions {
		nparts := dpr.NumPartitions()
		legs += int64(nparts)
		var d *Delta
		if wd.Incremental {
			d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		got, err := dpr.ProcessDelta(wd.Window, d)
		if err != nil {
			t.Fatalf("window %d: DPR: %v", wi, err)
		}
		want, err := rOracle.Process(wd.Window)
		if err != nil {
			t.Fatalf("window %d: oracle: %v", wi, err)
		}
		if gs, ws := answerKeySigs(got.Answers), answerKeySigs(want.Answers); !slices.Equal(gs, ws) {
			t.Fatalf("window %d: answers diverge after %d splits\nDPR:    %v\noracle: %v",
				wi, dpr.RebalanceStats().Splits, gs, ws)
		}
		// A post-window rebalance may already have changed the layout, so
		// the load rows match the partition count the window ran under.
		if loads := dpr.PartitionLoads(); len(loads) != nparts {
			t.Fatalf("window %d: %d load rows for %d partitions", wi, len(loads), nparts)
		}
	}

	rs := dpr.RebalanceStats()
	if rs.Splits < 1 {
		t.Errorf("sustained 80/20 skew never triggered a community split: %+v", rs)
	}
	if got := dpr.NumPartitions(); got <= an.Plan.NumPartitions() {
		t.Errorf("partition count %d did not grow past the design-time plan's %d", got, an.Plan.NumPartitions())
	}
	ts := dpr.TransportStats()
	if got := ts.RemoteWindows + ts.LocalFallbacks; got != legs {
		t.Errorf("books don't balance across migrations: remote %d + fallback %d = %d, want %d",
			ts.RemoteWindows, ts.LocalFallbacks, got, legs)
	}
	if ts.LocalFallbacks > 0 {
		t.Errorf("%d local fallbacks with healthy workers", ts.LocalFallbacks)
	}
}

// TestAdaptiveRefusesUnprofitableSplit pins the duplication cost model: a
// community whose rules join on no single key cannot be hash-split, and the
// plan-refine ladder is disabled — so sustained skew must produce refusals
// or inaction, never a layout change that would replicate traffic without
// a projected gain.
func TestAdaptiveRefusesUnprofitableSplit(t *testing.T) {
	// Joining car_pair on BOTH arguments leaves no single partition key, so
	// atomdep proves nothing and the community is unsplittable.
	src := `
linked(X,Y) :- car_pair(X,Y), car_pair(Y,X).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inpre := []string{"car_pair"}
	an, err := core.Analyze(prog, inpre, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	arities, err := dfp.InferArities(prog, inpre)
	if err != nil {
		t.Fatal(err)
	}
	keys := atomdep.Analyze(prog, an.Plan)
	cfg := Config{Program: prog, Inpre: inpre, OutputPreds: []string{"linked"}}

	workers := startWorkers(t, 2)
	opts := testDPROptions(src, workers)
	opts.Rebalance = &RebalanceOptions{SkewThreshold: 1.01, Sustain: 1, Cooldown: 1}
	dpr, err := NewDPR(cfg, NewAdaptivePartitioner(an.Plan, keys, arities), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dpr.Close()
	rOracle, err := NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rnd := rand.New(rand.NewSource(7))
	for wi := 0; wi < 8; wi++ {
		var window []rdf.Triple
		for i := 0; i < 40; i++ {
			a, b := rnd.Intn(6), rnd.Intn(6)
			window = append(window, rdf.Triple{S: fmt.Sprintf("c%d", a), P: "car_pair", O: fmt.Sprintf("c%d", b)})
		}
		got, err := dpr.Process(window)
		if err != nil {
			t.Fatalf("window %d: %v", wi, err)
		}
		want, err := rOracle.Process(window)
		if err != nil {
			t.Fatal(err)
		}
		if gs, ws := answerKeySigs(got.Answers), answerKeySigs(want.Answers); !slices.Equal(gs, ws) {
			t.Fatalf("window %d: answers diverge\nDPR:    %v\noracle: %v", wi, gs, ws)
		}
	}
	rs := dpr.RebalanceStats()
	if rs.Splits != 0 || rs.PlanRefines != 0 {
		t.Errorf("unsplittable community was split anyway: %+v", rs)
	}
	if dpr.NumPartitions() != an.Plan.NumPartitions() {
		t.Errorf("partition count changed from %d to %d with nothing to split",
			an.Plan.NumPartitions(), dpr.NumPartitions())
	}
}
