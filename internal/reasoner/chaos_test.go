package reasoner

// The chaos differential harness: the DPR — serial and pipelined — runs
// against real loopback workers with a deterministic seeded fault injector
// (internal/chaos) between coordinator and fleet, and every window's
// answers must still equal the monolithic R oracle's. Each schedule heals
// mid-stream and the harness then demands full recovery: zero new local
// fallbacks and fresh remote windows. Fault schedules are seeded, so a
// failure reproduces by re-running the test.

import (
	"fmt"
	"math/rand"
	"os"
	"slices"
	"strconv"
	"testing"
	"time"

	"streamrule/internal/asp/parser"
	"streamrule/internal/chaos"
	"streamrule/internal/core"
	"streamrule/internal/dfp"
	"streamrule/internal/progen"
	"streamrule/internal/rdf"
	"streamrule/internal/stream"
	"streamrule/internal/testleak"
)

// chaosSchedule is one reproducible fault scenario plus its non-vacuity
// probe: fired must report > 0 somewhere across the schedule's matrix
// cells, proving the schedule actually exercised its fault class. (The
// injector's per-conn RNGs key on the worker's ephemeral port, so any one
// cell's draws vary run to run; the aggregate is what must never be
// vacuous.)
type chaosSchedule struct {
	name      string
	cfg       chaos.Config
	crashAt   int           // window index at which worker 0 crashes (0 = never)
	crashDown time.Duration // how long the crashed worker refuses dials
	fired     func(chaos.Stats) int64
}

func chaosSchedules() []chaosSchedule {
	return []chaosSchedule{
		{name: "resets", cfg: chaos.Config{Seed: 101, Reset: 0.1},
			fired: func(s chaos.Stats) int64 { return s.Resets }},
		{name: "dial-refusals", cfg: chaos.Config{Seed: 102, DialRefuse: 0.5, Reset: 0.08},
			fired: func(s chaos.Stats) int64 { return s.RefusedDials }},
		{name: "corruption", cfg: chaos.Config{Seed: 103, Corrupt: 0.12},
			fired: func(s chaos.Stats) int64 { return s.CorruptedFrames }},
		{name: "duplicates", cfg: chaos.Config{Seed: 104, Duplicate: 0.1},
			fired: func(s chaos.Stats) int64 { return s.DuplicatedFrames }},
		{name: "delays", cfg: chaos.Config{Seed: 105, Delay: 0.6, DelayFor: 2 * time.Millisecond},
			fired: func(s chaos.Stats) int64 { return s.DelayedFrames }},
		{name: "stalls", cfg: chaos.Config{Seed: 106, Stall: 0.12, StallFor: 400 * time.Millisecond},
			fired: func(s chaos.Stats) int64 { return s.Stalls }},
		{name: "crash-restart", cfg: chaos.Config{Seed: 107},
			crashAt: 4, crashDown: 150 * time.Millisecond,
			fired: func(s chaos.Stats) int64 { return s.Crashes }},
		{name: "everything", cfg: chaos.Config{Seed: 108, Reset: 0.02, DialRefuse: 0.1,
			Corrupt: 0.04, Duplicate: 0.03, Delay: 0.2, DelayFor: time.Millisecond,
			Stall: 0.02, StallFor: 400 * time.Millisecond},
			fired: func(s chaos.Stats) int64 { return s.Fired() }},
	}
}

// chaosPrograms are the progen classes the matrix runs over. The seeds are
// the same curated ones TestDifferentialDistributedVsLocal proves
// DPR ≡ PR ≡ R on fault-free (900+index): the chaos matrix varies the
// fault schedule, not the program, so divergence can only mean the fault
// handling corrupted an answer.
func chaosPrograms() []struct {
	name string
	cfg  progen.Config
	seed int64
} {
	return []struct {
		name string
		cfg  progen.Config
		seed int64
	}{
		{"flat", progen.Config{Derived: 3}, 900},
		{"recursive", progen.Config{Derived: 3, Recursion: true, Consts: 4}, 902},
		{"constraints", progen.Config{Derived: 4, Constraints: true}, 903},
	}
}

// chaosDPROptions are deliberately aggressive timings so one short stream
// exercises stragglers, heartbeats, quarantines, and redials: the breaker
// opens after 2 failures and caps at 150ms, so a 250ms post-heal settle
// outlives every quarantine.
func chaosDPROptions(src string, workers []string, inj *chaos.Injector, depth int) DPROptions {
	return DPROptions{
		Workers:           workers,
		ProgramSource:     src,
		StragglerTimeout:  250 * time.Millisecond,
		DialTimeout:       time.Second,
		MaxInFlight:       depth,
		Dialer:            inj.Dial,
		HeartbeatInterval: time.Millisecond,
		HeartbeatTimeout:  150 * time.Millisecond,
		Breaker: BreakerOptions{
			Threshold: 2,
			BaseDelay: 30 * time.Millisecond,
			MaxDelay:  150 * time.Millisecond,
		},
	}
}

// newChaosDPR constructs a DPR through the injector, retrying construction
// a bounded number of times: hostile schedules (50% dial refusal) can leave
// every worker unreachable on a given attempt, and each retry advances the
// deterministic dial schedule.
func newChaosDPR(t *testing.T, cfg Config, plan *core.Plan, opts DPROptions) *DPR {
	t.Helper()
	var lastErr error
	for attempt := 0; attempt < 25; attempt++ {
		dpr, err := NewDPR(cfg, NewPlanPartitioner(plan), opts)
		if err == nil {
			return dpr
		}
		lastErr = err
	}
	t.Fatalf("NewDPR failed 25 consecutive attempts: %v", lastErr)
	return nil
}

// runChaosDifferential drives the DPR submit-ahead over the emissions with
// the fault schedule live, asserting R-identical answers on every window.
// At two thirds of the stream the injector heals; after a bounded settle
// the run must be fully recovered: zero further local fallbacks, and new
// remote windows. Returns the final transport stats for matrix aggregation.
func runChaosDifferential(t *testing.T, label string, dpr *DPR, rOracle *R, emissions []stream.WindowDelta, inj *chaos.Injector, sched chaosSchedule, workers []string) TransportStats {
	t.Helper()
	depth := dpr.MaxInFlight()
	type pend struct {
		wi     int
		window []rdf.Triple
	}
	var queue []pend
	collect := func() {
		out, err := dpr.Collect()
		if err != nil {
			t.Fatalf("%s window %d: Collect: %v", label, queue[0].wi, err)
		}
		head := queue[0]
		queue = queue[1:]
		wantR, err := rOracle.Process(head.window)
		if err != nil {
			t.Fatalf("%s window %d: R oracle: %v", label, head.wi, err)
		}
		gs, rs := answerKeySigs(out.Answers), answerKeySigs(wantR.Answers)
		if !slices.Equal(gs, rs) {
			t.Fatalf("%s window %d: DPR under chaos diverges from R\nDPR: %v\nR:   %v", label, head.wi, gs, rs)
		}
	}

	healAt := 2 * len(emissions) / 3
	settleEnd := healAt + 2
	var postSettle TransportStats
	for wi, wd := range emissions {
		if wi == healAt {
			for len(queue) > 0 {
				collect()
			}
			inj.Heal()
			// Outlive the longest possible quarantine (MaxDelay 150ms
			// +20% jitter) so every session is allowed to redial.
			time.Sleep(250 * time.Millisecond)
		}
		if wi == settleEnd {
			for len(queue) > 0 {
				collect()
			}
			postSettle = dpr.TransportStats()
		}
		if sched.crashAt > 0 && wi == sched.crashAt {
			inj.Crash(workers[0], sched.crashDown)
		}
		var d *Delta
		if wd.Incremental {
			d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		if err := dpr.Submit(wd.Window, d); err != nil {
			t.Fatalf("%s window %d: Submit: %v", label, wi, err)
		}
		queue = append(queue, pend{wi, wd.Window})
		if len(queue) >= depth {
			collect()
		}
	}
	for len(queue) > 0 {
		collect()
	}

	final := dpr.TransportStats()
	if n := final.LocalFallbacks - postSettle.LocalFallbacks; n != 0 {
		t.Errorf("%s: %d local fallback(s) after heal+settle; recovery incomplete", label, n)
	}
	if final.RemoteWindows <= postSettle.RemoteWindows {
		t.Errorf("%s: no remote windows after heal (remote %d -> %d)", label, postSettle.RemoteWindows, final.RemoteWindows)
	}
	return final
}

// chaosRun is one cell of the matrix: fresh injector, fresh DPR at the
// given depth, fresh R oracle, leak-checked end to end. Alongside the
// transport stats it reports how often the schedule's fault class fired
// (Heal gates further faults, so the count is the pre-heal tally).
func chaosRun(t *testing.T, sched chaosSchedule, pcfg progen.Config, seed int64, depth, triples int, workers []string) (TransportStats, int64) {
	t.Helper()
	t.Cleanup(testleak.Check(t))
	rnd := rand.New(rand.NewSource(seed))
	gp := progen.New(rnd, pcfg)
	prog, err := parser.Parse(gp.Src)
	if err != nil {
		t.Fatalf("generated program does not parse: %v\n%s", err, gp.Src)
	}
	cfg := Config{Program: prog, Inpre: gp.Inpre, Arities: dfp.Arities(gp.Arities)}
	analysis, err := core.Analyze(prog, gp.Inpre, 1.0)
	if err != nil {
		t.Skipf("program has no partitioning plan: %v", err)
	}
	stream20 := gp.Stream(rnd, pcfg, triples)
	emissions := emitWindows(stream20, 20, 5)

	inj := chaos.New(sched.cfg)
	dpr := newChaosDPR(t, cfg, analysis.Plan, chaosDPROptions(gp.Src, workers, inj, depth))
	defer dpr.Close()
	rOracle, err := NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	label := fmt.Sprintf("%s/depth=%d", sched.name, depth)
	ts := runChaosDifferential(t, label, dpr, rOracle, emissions, inj, sched, workers)
	return ts, sched.fired(inj.Stats())
}

// TestChaosDifferential is the acceptance matrix: every seeded fault
// schedule × every progen class × serial and pipelined depth, each run
// asserting R-identical answers on all windows, schedule non-vacuity,
// post-heal recovery, and no leaked goroutines. Across the whole matrix the
// fallback, redial, circuit-open, and checksum-failure recovery paths must
// each have been taken at least once.
func TestChaosDifferential(t *testing.T) {
	workers := startWorkers(t, 2)
	var agg TransportStats
	cells := 0
	for _, sched := range chaosSchedules() {
		sched := sched
		t.Run(sched.name, func(t *testing.T) {
			var schedFired int64
			ran := 0
			for _, pc := range chaosPrograms() {
				pc := pc
				t.Run(pc.name, func(t *testing.T) {
					for _, depth := range []int{1, 3} {
						ts, fired := chaosRun(t, sched, pc.cfg, pc.seed, depth, 140, workers)
						schedFired += fired
						ran++
						agg.LocalFallbacks += ts.LocalFallbacks
						agg.Redials += ts.Redials
						agg.CircuitOpens += ts.CircuitOpens
						agg.ChecksumFailures += ts.ChecksumFailures
					}
				})
			}
			cells += ran
			if !t.Failed() && ran > 0 && schedFired == 0 {
				t.Errorf("schedule %q fired no fault of its class in any of its matrix cells", sched.name)
			}
		})
	}
	if t.Failed() || cells < len(chaosSchedules())*len(chaosPrograms())*2 {
		return // the aggregate is meaningless on a partial or filtered matrix
	}
	if agg.LocalFallbacks == 0 {
		t.Error("no schedule forced a local fallback; the matrix is vacuous")
	}
	if agg.Redials == 0 {
		t.Error("no schedule forced a redial; the matrix is vacuous")
	}
	if agg.CircuitOpens == 0 {
		t.Error("no schedule opened a circuit; the matrix is vacuous")
	}
	if agg.ChecksumFailures == 0 {
		t.Error("no schedule produced a CRC failure; the matrix is vacuous")
	}
}

// TestChaosRandomizedSchedule is the smoke tier: a fresh random seed per
// run (pin it with CHAOS_SEED; the failing seed is always logged), mixed
// fault rates, repeated until the CHAOS_SMOKE_TIME budget (default: one
// iteration) runs out.
func TestChaosRandomizedSchedule(t *testing.T) {
	workers := startWorkers(t, 2)
	budget := time.Duration(0)
	if v := os.Getenv("CHAOS_SMOKE_TIME"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("CHAOS_SMOKE_TIME: %v", err)
		}
		budget = d
	}
	seed := time.Now().UnixNano()
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED: %v", err)
		}
		seed = s
	}
	deadline := time.Now().Add(budget)
	for iter := 0; ; iter++ {
		t.Logf("iteration %d: seed %d (re-run with CHAOS_SEED=%d)", iter, seed, seed)
		sched := chaosSchedule{
			name: "randomized",
			cfg: chaos.Config{Seed: seed, Reset: 0.02, DialRefuse: 0.1, Corrupt: 0.04,
				Duplicate: 0.03, Delay: 0.2, DelayFor: time.Millisecond},
			fired: func(s chaos.Stats) int64 { return s.Fired() },
		}
		t.Run(fmt.Sprintf("iter%d", iter), func(t *testing.T) {
			// The program stays on the curated flat seed (proven R-equal
			// fault-free); only the fault schedule is randomized.
			_, fired := chaosRun(t, sched, progen.Config{Derived: 3}, 900, 3, 140, workers)
			t.Logf("iteration %d fired %d faults", iter, fired)
		})
		if t.Failed() || !time.Now().Before(deadline) {
			return
		}
		seed++
	}
}

// TestChaosSoak is the long tier (skipped under -short): the everything
// schedule over a longer stream with two mid-stream worker crashes, serial
// and pipelined.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	workers := startWorkers(t, 2)
	base := chaosSchedules()[len(chaosSchedules())-1] // "everything"
	for _, depth := range []int{1, 3} {
		depth := depth
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			t.Cleanup(testleak.Check(t))
			// The recursive class on its curated seed (proven R-equal
			// fault-free), over a longer stream than the matrix runs.
			rnd := rand.New(rand.NewSource(902))
			pcfg := progen.Config{Derived: 3, Recursion: true, Consts: 4}
			gp := progen.New(rnd, pcfg)
			prog, err := parser.Parse(gp.Src)
			if err != nil {
				t.Fatalf("generated program does not parse: %v\n%s", err, gp.Src)
			}
			cfg := Config{Program: prog, Inpre: gp.Inpre, Arities: dfp.Arities(gp.Arities)}
			analysis, err := core.Analyze(prog, gp.Inpre, 1.0)
			if err != nil {
				t.Skipf("program has no partitioning plan: %v", err)
			}
			emissions := emitWindows(gp.Stream(rnd, pcfg, 300), 20, 5)

			sched := base
			sched.name = "soak"
			inj := chaos.New(sched.cfg)
			dpr := newChaosDPR(t, cfg, analysis.Plan, chaosDPROptions(gp.Src, workers, inj, depth))
			defer dpr.Close()
			rOracle, err := NewR(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Two crash points, both before the heal: one worker goes down
			// immediately, the other a third of the way in.
			inj.Crash(workers[1], 120*time.Millisecond)
			sched.crashAt = len(emissions) / 3
			sched.crashDown = 120 * time.Millisecond
			runChaosDifferential(t, fmt.Sprintf("soak/depth=%d", depth), dpr, rOracle, emissions, inj, sched, workers)
			// Both crash points are scripted, so the soak is never vacuous.
			if got := inj.Stats().Crashes; got < 2 {
				t.Errorf("soak expected 2 scripted crashes, injector saw %d", got)
			}
		})
	}
}
