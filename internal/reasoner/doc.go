// Package reasoner implements the reasoning layer of the extended StreamRule
// framework (Figure 6 of the paper): the baseline reasoner R (data format
// processor + grounder + solver over the whole window), the parallel
// reasoner PR (partitioning handler, k reasoner copies, combining handler),
// the distributed reasoner DPR (the same partition/combine pipeline with the
// k copies running on remote workers over internal/transport), and the
// accuracy metric of §III.
//
// # Reasoner topologies
//
// R processes the entire window with one grounder+solver pass. PR routes
// window items into the partitions of a design-time plan (input-dependency
// communities) and runs one R per partition in parallel, combining the
// per-partition answer sets by the cross-product-of-unions formula. DPR
// keeps PR's partitioning and combining handlers on the coordinator but
// ships each partition's sub-window to a remote worker session, where a
// full R (incremental, memory-budgeted) processes it; answers return in the
// portable wire form of internal/asp/intern and are re-interned through a
// cached per-worker dictionary. Every DPR partition also holds a local
// fallback R, so a dead or straggling worker costs latency, not answers.
//
// All three expose the same processing surface: Process grounds from
// scratch; ProcessDelta maintains the previous window's grounding under a
// windower-reported delta where the program is eligible, with automatic
// fallback everywhere else. Answers are identical along every path — the
// differential harnesses in this package's tests enforce R ≡ PR ≡ DPR on
// every window, with and without eviction.
//
// # Memory
//
// With Config.MemoryBudget set, a reasoner owns a private interning table
// and rotates it between windows when the budget is exceeded (memory.go);
// PR coordinates one rotation across its k partition reasoners, and DPR's
// workers rotate their own tables independently while the coordinator
// budgets its answer table. Stats surfaces the table metrics, plus the
// transport metrics (bytes shipped, dictionary hit rate, fallbacks) for
// DPR.
//
// The worker side of DPR lives in worker.go: WorkerHandler builds one
// session (a full R plus a wire encoder) per coordinator connection, so a
// single worker process can serve many coordinators and programs at once.
package reasoner
