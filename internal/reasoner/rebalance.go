// The adaptive rebalancer: partitioning as a runtime concern. The paper's
// community decomposition (§V) is computed once at design time; under an
// adversarially skewed stream that leaves k−1 workers idle, a static layout
// wastes the fleet. The rebalancer closes the loop: it observes every
// window's per-partition load (cp-ms and routed items — the rows fixed up
// by the fallback-attribution work in this package), detects sustained
// skew across workers, and adapts BETWEEN windows, when no request is in
// flight:
//
//   - Move: migrate a hot partition to a cold worker (any partitioner).
//   - Split: widen the hottest community's hash fan-out along the proven
//     atom-level key (AdaptivePartitioner only), or install a finer
//     community plan from the Louvain resolution ladder.
//
// Every split candidate is priced with the paper's duplication-share
// analysis before it is accepted: the candidate routes the last observed
// window, and a cut whose extra replicated traffic exceeds the projected
// critical-path gain is refused. Migration itself rides the session
// machinery of the wire protocol — affected sessions are retired, so the
// next window redials, reships full sub-windows, and replays dictionaries;
// no answers are dropped and no new protocol is needed.

package reasoner

import (
	"fmt"

	"streamrule/internal/atomdep"
	"streamrule/internal/core"
)

// RebalanceOptions tunes the adaptive rebalancer (DPROptions.Rebalance).
// The zero value is usable: every field falls back to the documented
// default.
type RebalanceOptions struct {
	// SkewThreshold is the max/mean per-worker load ratio that counts as a
	// skewed window (default 1.5). Idle workers push the mean down, so an
	// unused worker raises the measured skew — by design.
	SkewThreshold float64
	// Sustain is the number of CONSECUTIVE skewed windows required before
	// the rebalancer acts (default 2): one bursty window must not thrash
	// the layout.
	Sustain int
	// Cooldown is the number of windows to observe after an action (or a
	// refusal) before acting again (default 2) — migrations cost a
	// full-window reship, so decisions get time to show in the stats.
	Cooldown int
	// MaxFanout caps a single community's hash fan-out (0 = the current
	// number of workers).
	MaxFanout int
	// MaxRefineResolution caps the Louvain resolution ladder for plan
	// refines (default 8); each refine doubles the current resolution.
	MaxRefineResolution float64
	// PlanRefine opts into plan refines: when moves and hash splits are
	// exhausted, re-run the design-time analysis one rung up the Louvain
	// resolution ladder and install the finer community plan. OFF by
	// default because it is the one adaptation that can trade exactness:
	// a finer cut may separate predicates that interact through negation
	// or recursion, reproducing the paper's §III accuracy loss at runtime.
	// Moves and hash splits are always answer-exact.
	PlanRefine bool
	// MinWindowItems skips skew detection on windows routing fewer items
	// (default 0 = observe everything): tiny windows have noisy ratios.
	MinWindowItems int
}

func (o RebalanceOptions) skewThreshold() float64 {
	if o.SkewThreshold > 0 {
		return o.SkewThreshold
	}
	return 1.5
}

func (o RebalanceOptions) sustain() int {
	if o.Sustain > 0 {
		return o.Sustain
	}
	return 2
}

func (o RebalanceOptions) cooldown() int {
	if o.Cooldown > 0 {
		return o.Cooldown
	}
	return 2
}

func (o RebalanceOptions) maxRefineResolution() float64 {
	if o.MaxRefineResolution > 0 {
		return o.MaxRefineResolution
	}
	return 8
}

// RebalanceStats counts the rebalancer's decisions since construction.
type RebalanceStats struct {
	// Observations counts windows the rebalancer inspected.
	Observations int64
	// Moves counts partition migrations between workers.
	Moves int64
	// Splits counts accepted community hash splits; PlanRefines counts
	// accepted finer community plans.
	Splits, PlanRefines int64
	// RefusedSplits counts split candidates rejected by the duplication
	// cost model (replication cost exceeded the projected gain).
	RefusedSplits int64
	// Joins/Leaves count elastic fleet membership changes (AddWorker /
	// RemoveWorker) — these tick even without a rebalancer configured.
	Joins, Leaves int64
	// LastAction describes the most recent decision, for logs.
	LastAction string
}

// rebalancer holds the runtime state of the adaptive loop: per-partition
// load EWMA, the skew streak, and the post-action cooldown.
type rebalancer struct {
	opts     RebalanceOptions
	stats    RebalanceStats
	loadEwma []float64
	streak   int
	cooldown int
}

func newRebalancer(opts RebalanceOptions) *rebalancer {
	return &rebalancer{opts: opts}
}

// step runs one observation+decision round. It is called by Collect only at
// a drained-pipeline point (no windows in flight), so layout mutations are
// safe. It never fails the window: decision errors are recorded in
// LastAction and the static layout keeps working.
func (rb *rebalancer) step(dpr *DPR) {
	loads := dpr.lastLoads
	if len(loads) == 0 {
		return
	}
	rb.stats.Observations++

	// This window's per-partition weights: cp-ns when the workers reported
	// compute times, routed items otherwise (deterministic fallback).
	weights := make([]float64, len(loads))
	var cpSum int64
	items := 0
	for _, pl := range loads {
		cpSum += pl.CP.Nanoseconds()
		items += pl.Items
	}
	for p, pl := range loads {
		if cpSum > 0 {
			weights[p] = float64(pl.CP.Nanoseconds())
		} else {
			weights[p] = float64(pl.Items)
		}
	}
	// EWMA-smooth against the previous rounds; a partition-count change
	// (split, plan refine) resets the history.
	if len(rb.loadEwma) != len(weights) {
		rb.loadEwma = weights
	} else {
		for p := range weights {
			rb.loadEwma[p] = 0.5*rb.loadEwma[p] + 0.5*weights[p]
		}
	}

	if rb.opts.MinWindowItems > 0 && items < rb.opts.MinWindowItems {
		rb.streak = 0
		return
	}

	// Per-worker load over ALL sessions: an idle worker contributes zero
	// and therefore raises the measured skew, which is exactly what should
	// draw work toward it.
	assign := make([]int, len(rb.loadEwma))
	perSession := make([]float64, len(dpr.sessions))
	for si, ps := range dpr.sessions {
		for _, p := range ps.parts {
			if p < len(assign) {
				assign[p] = si
				perSession[si] += rb.loadEwma[p]
			}
		}
	}
	var maxLoad, sum float64
	hotSession := 0
	for si, l := range perSession {
		sum += l
		if l > maxLoad {
			maxLoad, hotSession = l, si
		}
	}
	mean := sum / float64(len(perSession))
	if mean <= 0 {
		return
	}
	if maxLoad/mean < rb.opts.skewThreshold() {
		rb.streak = 0
		if rb.cooldown > 0 {
			rb.cooldown--
		}
		return
	}
	rb.streak++
	if rb.cooldown > 0 {
		rb.cooldown--
		return
	}
	if rb.streak < rb.opts.sustain() {
		return
	}

	// When the hot worker's load is one indivisible partition that alone
	// exceeds threshold x mean, no move can bring its host below the skew
	// threshold — prefer the split (which can actually divide it) and only
	// fall back to a move when the split is refused or unavailable.
	// Otherwise moves, which never replicate traffic, go first.
	if rb.preferSplit(dpr, hotSession, mean) {
		if rb.trySplit(dpr, assign, hotSession) {
			return
		}
		rb.tryMove(dpr, assign, perSession, hotSession)
		return
	}
	if rb.tryMove(dpr, assign, perSession, hotSession) {
		return
	}
	rb.trySplit(dpr, assign, hotSession)
}

// preferSplit reports whether the hot worker's skew is dominated by a
// single partition a split could divide: its hottest partition alone
// carries more than threshold x mean (so wherever a move lands it, the
// host stays skewed) and the partitioner has a split left to offer.
// Without this preference the rebalancer burns reship windows shuffling
// marginal partitions while the one hot partition stays whole.
func (rb *rebalancer) preferSplit(dpr *DPR, hot int, mean float64) bool {
	hottest, hw := -1, -1.0
	for _, p := range dpr.sessions[hot].parts {
		if w := rb.loadEwma[p]; w > hw {
			hottest, hw = p, w
		}
	}
	if hottest < 0 || hw < rb.opts.skewThreshold()*mean {
		return false
	}
	ap, ok := dpr.part.(*AdaptivePartitioner)
	if !ok {
		return false
	}
	c := ap.CommunityOf(hottest)
	if c < 0 {
		return false
	}
	maxFanout := rb.opts.MaxFanout
	if maxFanout <= 0 {
		maxFanout = len(dpr.sessions)
	}
	return (ap.Splittable(c) && ap.Fanout(c) < maxFanout) || rb.opts.PlanRefine
}

// tryMove migrates the hottest partition of the hottest worker to the
// coldest worker, if that meaningfully lowers the maximum worker load.
// Works with any partitioner — it only touches the assignment. The move
// must be projected to cut the max by at least 10%: the load inputs are
// noisy wall-clock samples, every move costs the next window a full
// reship, and without the margin the rebalancer churns marginal moves
// instead of reaching for the split the layout actually needs.
func (rb *rebalancer) tryMove(dpr *DPR, assign []int, perSession []float64, hot int) bool {
	if len(dpr.sessions[hot].parts) < 2 {
		return false
	}
	cold := 0
	for si, l := range perSession {
		if l < perSession[cold] {
			cold = si
		}
	}
	if cold == hot {
		return false
	}
	hottest, hw := -1, -1.0
	for _, p := range dpr.sessions[hot].parts {
		if w := rb.loadEwma[p]; w > hw {
			hottest, hw = p, w
		}
	}
	if hottest < 0 {
		return false
	}
	newHot := perSession[hot] - hw
	newCold := perSession[cold] + hw
	if max(newHot, newCold) >= 0.9*perSession[hot] {
		return false
	}
	assign[hottest] = cold
	if err := dpr.applyLayout(assign); err != nil {
		rb.stats.LastAction = fmt.Sprintf("move failed: %v", err)
		return true
	}
	rb.stats.Moves++
	rb.stats.LastAction = fmt.Sprintf("moved partition %d: %s -> %s",
		hottest, dpr.sessions[hot].addr, dpr.sessions[cold].addr)
	rb.cooldown = rb.opts.cooldown()
	rb.streak = 0
	return true
}

// trySplit refines the hottest worker's hottest community: first by
// widening its hash fan-out along the proven atom-level key, else by
// installing a finer community plan off the Louvain resolution ladder.
// Either candidate must pass the duplication cost model on the last
// observed window, or it is refused and counted. Returns true iff a new
// layout was installed (a refusal or a no-op returns false, so the
// caller may still fall back to a move).
func (rb *rebalancer) trySplit(dpr *DPR, assign []int, hot int) bool {
	ap, ok := dpr.part.(*AdaptivePartitioner)
	if !ok {
		return false
	}
	hottest, hw := -1, -1.0
	for _, p := range dpr.sessions[hot].parts {
		if w := rb.loadEwma[p]; w > hw {
			hottest, hw = p, w
		}
	}
	if hottest < 0 {
		return false
	}
	c := ap.CommunityOf(hottest)
	if c < 0 {
		return false
	}

	maxFanout := rb.opts.MaxFanout
	if maxFanout <= 0 {
		maxFanout = len(dpr.sessions)
	}

	var cand *AdaptivePartitioner
	action := ""
	if ap.Splittable(c) && ap.Fanout(c) < maxFanout {
		m := min(2*ap.Fanout(c), maxFanout)
		cand = ap.withFanout(c, m)
		action = fmt.Sprintf("split community %d to fan-out %d", c, m)
	} else if rb.opts.PlanRefine {
		cand, action = rb.refinedPlanCandidate(dpr, ap)
	}
	if cand == nil {
		// Nothing left to try at this layout; back off before looking
		// again.
		rb.cooldown = rb.opts.cooldown()
		rb.streak = 0
		return false
	}

	accepted, weights := rb.price(dpr, ap, cand)
	if !accepted {
		rb.stats.RefusedSplits++
		rb.stats.LastAction = "refused: " + action + " (duplication cost exceeds projected gain)"
		rb.cooldown = rb.opts.cooldown()
		rb.streak = 0
		return false
	}

	// Install the candidate layout on the LIVE partitioner and re-layout
	// the sessions around the new partition set.
	if cand.plan != ap.plan {
		ap.setPlan(cand.plan, cand.keys)
		rb.stats.PlanRefines++
	} else {
		ap.width = cand.width
		ap.reindex()
		rb.stats.Splits++
	}
	if err := dpr.applyLayout(assignLPT(weights, len(dpr.sessions))); err != nil {
		rb.stats.LastAction = fmt.Sprintf("%s: layout failed: %v", action, err)
		return true
	}
	rb.stats.LastAction = action
	rb.loadEwma = weights
	rb.cooldown = rb.opts.cooldown()
	rb.streak = 0
	return true
}

// refinedPlanCandidate re-runs the design-time analysis one rung up the
// Louvain resolution ladder and returns a candidate partitioner over the
// finer plan (nil when the ladder is exhausted or the plan did not get
// finer).
func (rb *rebalancer) refinedPlanCandidate(dpr *DPR, ap *AdaptivePartitioner) (*AdaptivePartitioner, string) {
	res := ap.plan.Resolution
	if res <= 0 {
		res = 1
	}
	next := res * 2
	if next > rb.opts.maxRefineResolution() {
		return nil, ""
	}
	an, err := core.Analyze(dpr.cfg.Program, dpr.cfg.Inpre, next)
	if err != nil || an.Plan.NumPartitions() <= ap.plan.NumPartitions() {
		return nil, ""
	}
	keys := atomdep.Analyze(dpr.cfg.Program, an.Plan)
	return NewAdaptivePartitioner(an.Plan, keys, ap.arities),
		fmt.Sprintf("refined plan to resolution %g (%d communities)", next, an.Plan.NumPartitions())
}

// price runs the duplication cost model: both partitioners route the last
// observed window, and the candidate is accepted only when its projected
// critical-path gain (drop in the maximum partition weight) exceeds its
// replication cost (growth in routed-item duplication — the paper's
// duplication share). Returns the candidate's per-partition item weights
// for the follow-up layout.
func (rb *rebalancer) price(dpr *DPR, cur, cand *AdaptivePartitioner) (bool, []float64) {
	window := dpr.lastWindow
	if len(window) == 0 {
		return false, nil
	}
	parts1, _ := cur.Partition(window)
	parts2, _ := cand.Partition(window)
	var routed1, routed2, max1, max2 int
	for _, p := range parts1 {
		routed1 += len(p)
		if len(p) > max1 {
			max1 = len(p)
		}
	}
	weights := make([]float64, len(parts2))
	for i, p := range parts2 {
		routed2 += len(p)
		weights[i] = float64(len(p)) + 1
		if len(p) > max2 {
			max2 = len(p)
		}
	}
	if max2 >= max1 || routed1 == 0 || max2 == 0 {
		return false, nil
	}
	gain := float64(max1)/float64(max2) - 1
	cost := float64(routed2-routed1) / float64(routed1)
	return gain > cost, weights
}
