package reasoner

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"

	"streamrule/internal/asp/parser"
	"streamrule/internal/asp/solve"
	"streamrule/internal/core"
	"streamrule/internal/dfp"
	"streamrule/internal/progen"
	"streamrule/internal/rdf"
	"streamrule/internal/stream"
)

// answerSigs renders answer sets as comparable signatures (interned IDs are
// shared through the process-wide table, so identical answers have identical
// signatures regardless of which reasoner produced them).
func answerSigs(answers []*solve.AnswerSet) []string {
	sigs := make([]string, len(answers))
	for i, a := range answers {
		sigs[i] = fmt.Sprint(a.IDs())
	}
	slices.Sort(sigs)
	return sigs
}

// emitWindows replays a triple stream through a sliding count window and
// collects every emission (including the final flush, as a non-incremental
// window), so several systems can process the identical window sequence.
func emitWindows(triples []rdf.Triple, size, step int) []stream.WindowDelta {
	w := &stream.SlidingCountWindow{Size: size, Step: step}
	var out []stream.WindowDelta
	for i, tr := range triples {
		if wd := w.AddDelta(stream.Item{Triple: tr, At: timeAt(i)}); wd != nil {
			out = append(out, *wd)
		}
	}
	if rest := w.Flush(); len(rest) > 0 {
		out = append(out, stream.WindowDelta{Window: rest, Added: rest})
	}
	return out
}

func timeAt(i int) time.Time {
	return time.Unix(0, int64(i)*int64(time.Millisecond))
}

// incrementalProcessor adapts R and PR to one delta-aware surface.
type incrementalProcessor interface {
	ProcessDelta(window []rdf.Triple, d *Delta) (*Output, error)
}

type scratchProcessor interface {
	Process(window []rdf.Triple) (*Output, error)
}

// runDifferential feeds the emission sequence to an incremental system and a
// from-scratch oracle of the same construction, asserting set-identical
// answers on every window. It returns how many windows the incremental
// system actually processed incrementally.
func runDifferential(t *testing.T, label string, inc incrementalProcessor, oracle scratchProcessor, emissions []stream.WindowDelta) int {
	t.Helper()
	incremental := 0
	for wi, wd := range emissions {
		var d *Delta
		if wd.Incremental {
			d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		got, err := inc.ProcessDelta(wd.Window, d)
		if err != nil {
			t.Fatalf("%s window %d: incremental: %v", label, wi, err)
		}
		want, err := oracle.Process(wd.Window)
		if err != nil {
			t.Fatalf("%s window %d: oracle: %v", label, wi, err)
		}
		if got.Skipped != want.Skipped {
			t.Fatalf("%s window %d: skipped = %d, oracle %d", label, wi, got.Skipped, want.Skipped)
		}
		gs, ws := answerSigs(got.Answers), answerSigs(want.Answers)
		if !slices.Equal(gs, ws) {
			t.Fatalf("%s window %d (incremental=%v): answer sets diverge\nincremental: %v\noracle:      %v",
				label, wi, got.Incremental, renderAnswers(got.Answers), renderAnswers(want.Answers))
		}
		if got.GroundStats.Atoms != want.GroundStats.Atoms {
			t.Fatalf("%s window %d: ground atoms = %d, oracle %d",
				label, wi, got.GroundStats.Atoms, want.GroundStats.Atoms)
		}
		if got.Incremental {
			incremental++
		}
	}
	return incremental
}

func renderAnswers(answers []*solve.AnswerSet) []string {
	out := make([]string, len(answers))
	for i, a := range answers {
		out[i] = a.String()
	}
	return out
}

// rAdapter lets the plain R.ProcessDelta surface also serve PR (whose
// ProcessDelta has the same shape already).
var _ incrementalProcessor = (*R)(nil)
var _ incrementalProcessor = (*PR)(nil)

// TestDifferentialIncrementalVsScratch is the archetype centerpiece:
// randomized programs x randomized streams x window shapes x (R | PR),
// asserting that incremental processing produces answer sets set-identical
// to from-scratch grounding on every window — including windows where the
// incremental path falls back (tumbling emissions, ineligible programs).
func TestDifferentialIncrementalVsScratch(t *testing.T) {
	type winCfg struct{ size, step int }
	windows := []winCfg{
		{20, 5},  // the paper's sliding shape: high overlap
		{16, 4},  // Step = Size/4
		{20, 20}, // tumbling degenerate: must fall back, stay correct
		{12, 1},  // maximal overlap, one item per emission
	}
	programs := []struct {
		name string
		cfg  progen.Config
	}{
		{"flat", progen.Config{Derived: 3}},
		{"negation-heavy", progen.Config{Derived: 5, UnaryInputs: 2, BinaryInputs: 2}},
		{"recursive", progen.Config{Derived: 3, Recursion: true, Consts: 4}},
		{"constraints", progen.Config{Derived: 4, Constraints: true}},
		{"kitchen-sink", progen.Config{Derived: 4, UnaryInputs: 2, BinaryInputs: 2, Recursion: true, Constraints: true, Consts: 4}},
		{"ineligible-fallback", progen.Config{Derived: 3, Ineligible: true}},
	}
	for pi, pc := range programs {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(100 + pi)))
			gp := progen.New(rnd, pc.cfg)
			prog, err := parser.Parse(gp.Src)
			if err != nil {
				t.Fatalf("generated program does not parse: %v\n%s", err, gp.Src)
			}
			cfg := Config{Program: prog, Inpre: gp.Inpre, Arities: dfp.Arities(gp.Arities)}
			triples := gp.Stream(rnd, pc.cfg, 140)

			for _, wc := range windows {
				emissions := emitWindows(triples, wc.size, wc.step)
				if len(emissions) == 0 {
					t.Fatalf("no emissions for %+v", wc)
				}

				// R incremental vs R from scratch.
				incR, err := NewR(cfg)
				if err != nil {
					t.Fatalf("NewR: %v\n%s", err, gp.Src)
				}
				oraR, err := NewR(cfg)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("R[size=%d step=%d]", wc.size, wc.step)
				incWindows := runDifferential(t, label, incR, oraR, emissions)
				if incR.SupportsIncremental() && !pc.cfg.Ineligible &&
					wc.step*4 <= wc.size && len(emissions) > 3 && incWindows == 0 {
					t.Errorf("%s: expected at least one incrementally maintained window", label)
				}
				if !incR.SupportsIncremental() && incWindows > 0 {
					t.Errorf("%s: ineligible program reported incremental windows", label)
				}

				// PR incremental vs PR from scratch (dependency plan: the
				// partitioning is deterministic, so the oracle matches).
				analysis, err := core.Analyze(prog, gp.Inpre, 1.0)
				if err != nil {
					continue // program has no partitioning plan; R covered it
				}
				incPR, err := NewPR(cfg, NewPlanPartitioner(analysis.Plan))
				if err != nil {
					t.Fatal(err)
				}
				oraPR, err := NewPR(cfg, NewPlanPartitioner(analysis.Plan))
				if err != nil {
					t.Fatal(err)
				}
				label = fmt.Sprintf("PR[size=%d step=%d]", wc.size, wc.step)
				runDifferential(t, label, incPR, oraPR, emissions)
			}
		})
	}
}

// TestDifferentialPaperProgram pins the harness to the paper's program P and
// traffic-shaped input predicates, at several overlap ratios.
func TestDifferentialPaperProgram(t *testing.T) {
	src := `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
car_fire(X) :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inpre := []string{"average_speed", "car_number", "traffic_light", "car_in_smoke", "car_speed", "car_location"}
	cfg := Config{Program: prog, Inpre: inpre, OutputPreds: []string{"traffic_jam", "car_fire", "give_notification"}}

	rnd := rand.New(rand.NewSource(7))
	var triples []rdf.Triple
	for i := 0; i < 400; i++ {
		loc := fmt.Sprintf("l%d", rnd.Intn(8))
		car := fmt.Sprintf("v%d", rnd.Intn(10))
		switch rnd.Intn(6) {
		case 0:
			triples = append(triples, rdf.Triple{S: loc, P: "average_speed", O: fmt.Sprint(rnd.Intn(60))})
		case 1:
			triples = append(triples, rdf.Triple{S: loc, P: "car_number", O: fmt.Sprint(rnd.Intn(80))})
		case 2:
			triples = append(triples, rdf.Triple{S: loc, P: "traffic_light", O: "true"})
		case 3:
			triples = append(triples, rdf.Triple{S: car, P: "car_in_smoke", O: "high"})
		case 4:
			triples = append(triples, rdf.Triple{S: car, P: "car_speed", O: fmt.Sprint(rnd.Intn(3))})
		default:
			triples = append(triples, rdf.Triple{S: car, P: "car_location", O: loc})
		}
	}
	for _, wc := range []struct{ size, step int }{{100, 20}, {100, 10}, {60, 60}} {
		emissions := emitWindows(triples, wc.size, wc.step)
		incR, err := NewR(cfg)
		if err != nil {
			t.Fatal(err)
		}
		oraR, err := NewR(cfg)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("P[size=%d step=%d]", wc.size, wc.step)
		inc := runDifferential(t, label, incR, oraR, emissions)
		if wc.step < wc.size && inc == 0 {
			t.Errorf("%s: sliding windows never took the incremental path", label)
		}
	}
}
