package reasoner

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamrule/internal/asp/parser"
	"streamrule/internal/atomdep"
	"streamrule/internal/core"
	"streamrule/internal/dfp"
	"streamrule/internal/workload"
)

func atomPartitionerFor(t *testing.T, src string, m int) (*AtomPartitioner, Config) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, inpreP, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	keys := atomdep.Analyze(prog, a.Plan)
	arities, err := dfp.InferArities(prog, inpreP)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewAtomPartitioner(a.Plan, keys, arities, m)
	if err != nil {
		t.Fatal(err)
	}
	return part, Config{Program: prog, Inpre: inpreP}
}

func TestAtomPartitionerFanout(t *testing.T) {
	part, _ := atomPartitionerFor(t, programP, 4)
	// Both components of P are splittable: 2 communities x 4 buckets.
	if part.NumPartitions() != 8 {
		t.Errorf("partitions = %d, want 8", part.NumPartitions())
	}
	if part.SplittableCommunities() != 2 {
		t.Errorf("splittable = %d, want 2", part.SplittableCommunities())
	}

	partPrime, _ := atomPartitionerFor(t, programPPrime, 4)
	// P': the traffic community splits, the car community does not.
	if partPrime.SplittableCommunities() != 1 {
		t.Errorf("P' splittable = %d, want 1", partPrime.SplittableCommunities())
	}
	if partPrime.NumPartitions() != 5 { // 4 + 1
		t.Errorf("P' partitions = %d, want 5", partPrime.NumPartitions())
	}
}

func TestAtomPartitionerRejectsBadFanout(t *testing.T) {
	prog, err := parser.Parse(programP)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, inpreP, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	keys := atomdep.Analyze(prog, a.Plan)
	if _, err := NewAtomPartitioner(a.Plan, keys, dfp.Arities{}, 0); err == nil {
		t.Error("fan-out 0 must be rejected")
	}
}

func TestAtomPartitionerKeepsKeysTogether(t *testing.T) {
	part, _ := atomPartitionerFor(t, programP, 4)
	gen, err := workload.NewGenerator(5, workload.PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	window := gen.Window(3000)
	parts, skipped := part.Partition(window)
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != len(window) {
		t.Errorf("routed %d of %d items", total, len(window))
	}
	// Invariant: all traffic facts about one city land in one partition,
	// and so do all car facts about one car.
	where := make(map[string]int) // "kind/key" -> partition
	for i, p := range parts {
		for _, tr := range p {
			var key string
			switch tr.P {
			case "average_speed", "car_number", "traffic_light":
				key = "city/" + tr.S
			case "car_in_smoke", "car_speed", "car_location":
				key = "car/" + tr.S
			}
			if prev, ok := where[key]; ok && prev != i {
				t.Fatalf("key %s split across partitions %d and %d", key, prev, i)
			}
			where[key] = i
		}
	}
}

func TestAtomLevelPRExactOnP(t *testing.T) {
	part, cfg := atomPartitionerFor(t, programP, 4)
	r, err := NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewPR(cfg, part)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(17, workload.PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	window := gen.Window(4000)
	ref, err := r.Process(window)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pr.Process(window)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 1 || !got.Answers[0].Equal(ref.Answers[0]) {
		t.Errorf("atom-level partitioning must be exact on P: acc=%v",
			Accuracy(got.Answers, ref.Answers))
	}
}

func TestAtomLevelPRExactOnPPrime(t *testing.T) {
	// P' is only partially splittable; the partitioner must still be exact
	// because the unsplittable car community stays whole.
	part, cfg := atomPartitionerFor(t, programPPrime, 3)
	r, err := NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewPR(cfg, part)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(23, workload.PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	window := gen.Window(4000)
	ref, err := r.Process(window)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pr.Process(window)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(got.Answers, ref.Answers); acc < 0.9999 {
		t.Errorf("accuracy = %v, want 1.0", acc)
	}
}

// Property: atom-level partitioning of P is exact for arbitrary windows and
// fan-outs — the correctness claim of the future-work extension.
func TestQuickAtomLevelLossless(t *testing.T) {
	prog, err := parser.Parse(programP)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, inpreP, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	keys := atomdep.Analyze(prog, a.Plan)
	arities, err := dfp.InferArities(prog, inpreP)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Program: prog, Inpre: inpreP}
	r, err := NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, fanout uint8) bool {
		m := int(fanout%6) + 2
		part, err := NewAtomPartitioner(a.Plan, keys, arities, m)
		if err != nil {
			return false
		}
		pr, err := NewPR(cfg, part)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		gen, err := workload.NewGenerator(rng.Int63(), workload.PaperTraffic())
		if err != nil {
			return false
		}
		window := gen.Window(300 + rng.Intn(700))
		ref, err := r.Process(window)
		if err != nil {
			return false
		}
		got, err := pr.Process(window)
		if err != nil {
			return false
		}
		return len(got.Answers) == 1 && got.Answers[0].Equal(ref.Answers[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
