package reasoner

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
	"streamrule/internal/asp/solve"
	"streamrule/internal/core"
	"streamrule/internal/dfp"
	"streamrule/internal/progen"
	"streamrule/internal/rdf"
	"streamrule/internal/stream"
)

// cdnlCadence is a rotation schedule applied to the CDNL reasoner only: the
// oracles never rotate, so the comparison also pins that carried-clause
// remapping across Rotate (and the dropping of clauses over evicted atoms)
// cannot change an answer.
type cdnlCadence struct {
	name        string
	budgetBytes int64 // tight byte budget: rotates nearly every window
	every       int   // manual Rotate cadence (0 = none)
}

// stepCDNLDifferential runs one window through the CDNL engine and the two
// oracle engines and cross-checks the answers (as sorted multisets of
// table-independent keys — the engines sit on different interning tables once
// rotation is in play) and the oracle invariant that the worklist and naive
// engines agree exactly on stability-check counts. The CDNL engine is
// deliberately exempt from that last equality: skipping stability checks on
// non-disjunctive candidates is its contract, not a divergence.
func stepCDNLDifferential(t *testing.T, label string, wi int, wd stream.WindowDelta, cdnlR, wlR, nvR incrementalProcessor) *Output {
	t.Helper()
	var d *Delta
	if wd.Incremental {
		d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
	}
	got, err := cdnlR.ProcessDelta(wd.Window, d)
	if err != nil {
		t.Fatalf("%s window %d: CDNL: %v", label, wi, err)
	}
	wantWL, err := wlR.ProcessDelta(wd.Window, d)
	if err != nil {
		t.Fatalf("%s window %d: worklist: %v", label, wi, err)
	}
	wantNV, err := nvR.ProcessDelta(wd.Window, d)
	if err != nil {
		t.Fatalf("%s window %d: naive: %v", label, wi, err)
	}
	if len(got.Answers) != len(wantWL.Answers) || len(wantWL.Answers) != len(wantNV.Answers) {
		t.Fatalf("%s window %d: answer counts diverge: CDNL %d, worklist %d, naive %d",
			label, wi, len(got.Answers), len(wantWL.Answers), len(wantNV.Answers))
	}
	gs, ws, ns := answerKeySigs(got.Answers), answerKeySigs(wantWL.Answers), answerKeySigs(wantNV.Answers)
	if !slices.Equal(ws, ns) {
		t.Fatalf("%s window %d: oracles diverge from each other\nworklist: %v\nnaive:    %v", label, wi, ws, ns)
	}
	if !slices.Equal(gs, ws) {
		t.Fatalf("%s window %d: CDNL diverges from the oracles\nCDNL:     %v\nworklist: %v", label, wi, gs, ws)
	}
	if wantWL.SolveStats.StabilityChecks != wantNV.SolveStats.StabilityChecks {
		t.Fatalf("%s window %d: oracle stability checks diverge: worklist %d, naive %d",
			label, wi, wantWL.SolveStats.StabilityChecks, wantNV.SolveStats.StabilityChecks)
	}
	return got
}

// TestSolverDifferentialCDNL is the three-way acceptance gate of the
// conflict-driven engine: on randomized programs covering every rule class ×
// window shapes × rotation cadences, CDNL with cross-window clause carry must
// enumerate exactly the answer sets of BOTH pre-existing engines, through R,
// PR, and (below) DPR. Rotation cadences apply to the CDNL reasoner alone, so
// learned-state carry across table remaps is pinned against never-rotating
// oracles.
func TestSolverDifferentialCDNL(t *testing.T) {
	classes := []struct {
		name string
		cfg  progen.Config
		pr   bool
	}{
		{"stratified", progen.Config{}, false},
		{"recursive", progen.Config{Recursion: true}, false},
		{"constraints", progen.Config{Constraints: true}, false},
		{"choice-or-loop", progen.Config{Ineligible: true}, false},
		{"disjunctive", progen.Config{Disjunctive: true}, false},
		// Residual classes run PR too: exactly 2 answer sets per partition by
		// construction, so the combiner's cross-product cap cannot truncate
		// (see TestSolverDifferentialWorklistVsNaive).
		{"residual", progen.Config{Residual: true}, true},
		{"residual-recursive", progen.Config{Residual: true, Recursion: true}, true},
	}
	type winCfg struct{ size, step int }
	windows := []winCfg{
		{60, 20}, // sliding, 3x overlap — the clause-carry sweet spot
		{80, 80}, // tumbling: windows share no facts, carry must still be sound
		{50, 10}, // sliding, 5x overlap
	}
	cadences := []cdnlCadence{
		{name: "no-rotation"},
		{name: "bytes-tight", budgetBytes: 6 << 10},
		{name: "manual-every-3", every: 3},
	}
	var cdnlTotals solve.Stats
	for _, class := range classes {
		for seed := int64(0); seed < 2; seed++ {
			rnd := rand.New(rand.NewSource(seed*137 + 11))
			p := progen.New(rnd, class.cfg)
			prog, err := parser.Parse(p.Src)
			if err != nil {
				t.Fatalf("%s seed %d: parse: %v\n%s", class.name, seed, err, p.Src)
			}
			baseCfg := Config{Program: prog, Inpre: p.Inpre, Arities: p.Arities}
			naiveCfg := baseCfg
			naiveCfg.SolveOpts.NaivePropagation = true

			for wi, wc := range windows {
				// Cycle cadences across (seed, shape) instead of multiplying
				// the matrix: every cadence still meets every class.
				cad := cadences[(int(seed)+wi)%len(cadences)]
				label := fmt.Sprintf("%s seed %d w%d/s%d %s", class.name, seed, wc.size, wc.step, cad.name)
				stream := p.Stream(rnd, class.cfg, wc.size+3*wc.step)
				emissions := emitWindows(stream, wc.size, wc.step)

				cdnlCfg := baseCfg
				cdnlCfg.SolveOpts.CDNL = true
				cdnlCfg.MemoryBudgetBytes = cad.budgetBytes
				if cad.every > 0 {
					// Manual rotation needs a private table.
					cdnlCfg.GroundOpts.Intern = intern.NewTable()
				}

				cdnlR, err := NewR(cdnlCfg)
				if err != nil {
					t.Fatal(err)
				}
				wlR, err := NewR(baseCfg)
				if err != nil {
					t.Fatal(err)
				}
				nvR, err := NewR(naiveCfg)
				if err != nil {
					t.Fatal(err)
				}
				for wi, wd := range emissions {
					out := stepCDNLDifferential(t, "R "+label, wi, wd, cdnlR, wlR, nvR)
					cdnlTotals.Add(out.SolveStats)
					if cad.every > 0 && (wi+1)%cad.every == 0 {
						if err := cdnlR.Rotate(); err != nil {
							t.Fatalf("%s window %d: rotate: %v", label, wi, err)
						}
					}
				}

				if !class.pr {
					continue
				}
				cdnlPR, err := NewPR(cdnlCfg, NewRandomPartitioner(3, seed))
				if err != nil {
					t.Fatal(err)
				}
				wlPR, err := NewPR(baseCfg, NewRandomPartitioner(3, seed))
				if err != nil {
					t.Fatal(err)
				}
				nvPR, err := NewPR(naiveCfg, NewRandomPartitioner(3, seed))
				if err != nil {
					t.Fatal(err)
				}
				for wi, wd := range emissions {
					out := stepCDNLDifferential(t, "PR "+label, wi, wd, cdnlPR, wlPR, nvPR)
					cdnlTotals.Add(out.SolveStats)
					if cad.every > 0 && (wi+1)%cad.every == 0 {
						if err := cdnlPR.Rotate(); err != nil {
							t.Fatalf("%s window %d: PR rotate: %v", label, wi, err)
						}
					}
				}
			}
		}
	}
	// The progen classes exercise search but propagate to their answers
	// without conflicting, so the conflict/carry half of the gate runs on a
	// crafted class too: the a-branch fails through x(X) in every window that
	// holds an e fact, and sliding windows keep those ground rules alive so
	// the learned clause replays.
	crafted := `
a :- not b.
b :- not a.
x(X) :- e(X,Y), a.
:- x(X), a.
`
	prog, err := parser.Parse(crafted)
	if err != nil {
		t.Fatal(err)
	}
	baseCfg := Config{Program: prog, Inpre: []string{"e"}, Arities: dfp.Arities{"e": 2}}
	naiveCfg := baseCfg
	naiveCfg.SolveOpts.NaivePropagation = true
	rnd := rand.New(rand.NewSource(71))
	var triples []rdf.Triple
	for i := 0; i < 200; i++ {
		triples = append(triples, rdf.Triple{
			S: fmt.Sprintf("s%d", rnd.Intn(8)), P: "e", O: fmt.Sprint(rnd.Intn(5)),
		})
	}
	for _, cad := range cadences {
		label := fmt.Sprintf("crafted w60/s20 %s", cad.name)
		emissions := emitWindows(triples, 60, 20)
		cdnlCfg := baseCfg
		cdnlCfg.SolveOpts.CDNL = true
		cdnlCfg.MemoryBudgetBytes = cad.budgetBytes
		if cad.every > 0 {
			cdnlCfg.GroundOpts.Intern = intern.NewTable()
		}
		cdnlR, err := NewR(cdnlCfg)
		if err != nil {
			t.Fatal(err)
		}
		wlR, err := NewR(baseCfg)
		if err != nil {
			t.Fatal(err)
		}
		nvR, err := NewR(naiveCfg)
		if err != nil {
			t.Fatal(err)
		}
		for wi, wd := range emissions {
			out := stepCDNLDifferential(t, "R "+label, wi, wd, cdnlR, wlR, nvR)
			cdnlTotals.Add(out.SolveStats)
			if cad.every > 0 && (wi+1)%cad.every == 0 {
				if err := cdnlR.Rotate(); err != nil {
					t.Fatalf("%s window %d: rotate: %v", label, wi, err)
				}
			}
		}
		cdnlPR, err := NewPR(cdnlCfg, NewRandomPartitioner(3, 1))
		if err != nil {
			t.Fatal(err)
		}
		wlPR, err := NewPR(baseCfg, NewRandomPartitioner(3, 1))
		if err != nil {
			t.Fatal(err)
		}
		nvPR, err := NewPR(naiveCfg, NewRandomPartitioner(3, 1))
		if err != nil {
			t.Fatal(err)
		}
		for wi, wd := range emissions {
			out := stepCDNLDifferential(t, "PR "+label, wi, wd, cdnlPR, wlPR, nvPR)
			cdnlTotals.Add(out.SolveStats)
		}
	}

	// The gate must not pass vacuously: across the matrix the CDNL engine has
	// to have actually searched (residual windows), learned from conflicts,
	// and replayed carried clauses in later windows.
	if cdnlTotals.Choices == 0 {
		t.Error("CDNL engine never made a branching decision across the whole matrix")
	}
	if cdnlTotals.Learned == 0 {
		t.Error("CDNL engine never learned a clause across the whole matrix")
	}
	if cdnlTotals.ReusedClauses == 0 {
		t.Error("CDNL engine never reused a carried clause across the whole matrix")
	}
}

// TestSolverDifferentialCDNLDistributed extends the three-way gate to DPR:
// a distributed CDNL reasoner over 2 loopback workers — each worker session
// carrying its own learned-clause state across its windows, with budget-
// driven worker-table rotation in the fresh-constant variant — against the
// in-process worklist PR and naive R oracles.
func TestSolverDifferentialCDNLDistributed(t *testing.T) {
	programs := []struct {
		name   string
		cfg    progen.Config
		budget int
	}{
		{"residual", progen.Config{Residual: true}, 0},
		{"residual-recursive", progen.Config{Residual: true, Recursion: true}, 0},
		{"flat-fresh-budgeted", progen.Config{Derived: 3, Fresh: 0.6}, 96},
	}
	workers := startWorkers(t, 2)
	for pi, pc := range programs {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(1700 + pi)))
			p := progen.New(rnd, pc.cfg)
			prog, err := parser.Parse(p.Src)
			if err != nil {
				t.Fatalf("parse: %v\n%s", err, p.Src)
			}
			cfg := Config{Program: prog, Inpre: p.Inpre, Arities: dfp.Arities(p.Arities)}
			var emissions []stream.WindowDelta
			if pc.budget > 0 {
				seq := 0
				emissions = emitWindows(p.StreamFresh(rnd, pc.cfg, 160, &seq), 20, 5)
			} else {
				emissions = emitWindows(p.Stream(rnd, pc.cfg, 140), 20, 5)
			}

			// Partitioning itself changes the combined answers of residual
			// programs (the combiner crosses per-partition model sets), so
			// all three engines must share one partitioning scheme.
			mkPart := func() Partitioner { return NewRandomPartitioner(2, int64(pi)) }
			if analysis, err := core.Analyze(prog, p.Inpre, 1.0); err == nil {
				mkPart = func() Partitioner { return NewPlanPartitioner(analysis.Plan) }
			}
			cdnlCfg := cfg
			cdnlCfg.SolveOpts.CDNL = true
			cdnlCfg.MemoryBudget = pc.budget
			dpr, err := NewDPR(cdnlCfg, mkPart(), testDPROptions(p.Src, workers))
			if err != nil {
				t.Fatalf("NewDPR: %v", err)
			}
			defer dpr.Close()
			wlPR, err := NewPR(cfg, mkPart())
			if err != nil {
				t.Fatal(err)
			}
			naiveCfg := cfg
			naiveCfg.SolveOpts.NaivePropagation = true
			nvPR, err := NewPR(naiveCfg, mkPart())
			if err != nil {
				t.Fatal(err)
			}
			for wi, wd := range emissions {
				var d *Delta
				if wd.Incremental {
					d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
				}
				got, err := dpr.ProcessDelta(wd.Window, d)
				if err != nil {
					t.Fatalf("window %d: DPR: %v", wi, err)
				}
				wantPR, err := wlPR.Process(wd.Window)
				if err != nil {
					t.Fatalf("window %d: PR oracle: %v", wi, err)
				}
				wantNV, err := nvPR.Process(wd.Window)
				if err != nil {
					t.Fatalf("window %d: naive oracle: %v", wi, err)
				}
				gs, ps, rs := answerKeySigs(got.Answers), answerKeySigs(wantPR.Answers), answerKeySigs(wantNV.Answers)
				if !slices.Equal(ps, rs) {
					t.Fatalf("window %d: oracles diverge\nPR:    %v\nnaive: %v", wi, ps, rs)
				}
				if !slices.Equal(gs, ps) {
					t.Fatalf("window %d: CDNL DPR diverges from the oracles\nDPR:    %v\noracle: %v", wi, gs, ps)
				}
			}
			ts := dpr.TransportStats()
			if ts.RemoteWindows == 0 {
				t.Error("the distributed CDNL path was never exercised")
			}
			if pc.budget > 0 && ts.WorkerRotations == 0 {
				t.Errorf("fresh-constant stream with budget %d never rotated a worker table", pc.budget)
			}
		})
	}
}
