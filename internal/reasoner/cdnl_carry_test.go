package reasoner

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"streamrule/internal/asp/parser"
	"streamrule/internal/dfp"
	"streamrule/internal/rdf"
)

// carryTestConfig builds the crafted conflict-heavy program of the CDNL
// differential: every window holding an e fact conflicts on the a-branch, so
// the first residual window learns clauses and overlapping windows can
// replay them.
func carryTestConfig(t *testing.T, cdnl bool) Config {
	t.Helper()
	src := `
a :- not b.
b :- not a.
x(X) :- e(X,Y), a.
:- x(X), a.
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Program: prog, Inpre: []string{"e"}, Arities: dfp.Arities{"e": 2}}
	cfg.SolveOpts.CDNL = cdnl
	return cfg
}

// TestReasonerClauseCarry pins the cross-window contract at the reasoner
// level: learned clauses ride the R's CarryState across overlapping windows
// (ReusedClauses > 0 from the second window on, without changing answers),
// and the paths that abandon window continuity — re-seed and the internal
// incremental fallbacks, exercised here via processSeed — drop the state, so
// the next window replays nothing and has to re-learn.
func TestReasonerClauseCarry(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	var triples []rdf.Triple
	for i := 0; i < 160; i++ {
		triples = append(triples, rdf.Triple{
			S: fmt.Sprintf("s%d", rnd.Intn(6)), P: "e", O: fmt.Sprint(rnd.Intn(4)),
		})
	}
	emissions := emitWindows(triples, 60, 20)
	if len(emissions) < 4 {
		t.Fatalf("need at least 4 windows, got %d", len(emissions))
	}

	r, err := NewR(carryTestConfig(t, true))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewR(carryTestConfig(t, false))
	if err != nil {
		t.Fatal(err)
	}
	step := func(wi int) *Output {
		got, err := r.Process(emissions[wi].Window)
		if err != nil {
			t.Fatalf("window %d: %v", wi, err)
		}
		want, err := oracle.Process(emissions[wi].Window)
		if err != nil {
			t.Fatalf("window %d: oracle: %v", wi, err)
		}
		if gs, ws := answerKeySigs(got.Answers), answerKeySigs(want.Answers); !slices.Equal(gs, ws) {
			t.Fatalf("window %d: answers diverge\nCDNL:     %v\nworklist: %v", wi, gs, ws)
		}
		return got
	}

	out0 := step(0)
	if out0.SolveStats.ReusedClauses != 0 {
		t.Fatalf("first window reused %d clauses out of thin air", out0.SolveStats.ReusedClauses)
	}
	if out0.SolveStats.Learned == 0 {
		t.Fatalf("first window learned nothing; the program no longer conflicts: %+v", out0.SolveStats)
	}
	if r.carry == nil || r.carry.Clauses() == 0 {
		t.Fatal("first window left no carried clauses")
	}
	out1 := step(1)
	if out1.SolveStats.ReusedClauses == 0 {
		t.Errorf("overlapping window reused no clauses: %+v", out1.SolveStats)
	}

	// A re-seed abandons continuity: the carry must be dropped before the
	// window is solved, and the window after it starts from scratch again.
	// (Residual programs are not incrementally eligible, so processSeed also
	// covers the incremental-fallback resets — it funnels into the same
	// from-scratch path after resetting.)
	outSeed, err := r.processSeed(emissions[2].Window)
	if err != nil {
		t.Fatalf("processSeed: %v", err)
	}
	if outSeed.SolveStats.ReusedClauses != 0 {
		t.Errorf("re-seeded window reused %d clauses; continuity reset must drop the carry",
			outSeed.SolveStats.ReusedClauses)
	}
	if _, err := oracle.Process(emissions[2].Window); err != nil {
		t.Fatal(err)
	}
	out3 := step(3)
	if out3.SolveStats.ReusedClauses == 0 {
		t.Errorf("carry did not resume after the re-seeded window re-learned: %+v", out3.SolveStats)
	}
}

// TestReasonerCarryDisabledWithoutCDNL pins that the default engines pay
// nothing for the carry plumbing: no CarryState is even allocated.
func TestReasonerCarryDisabledWithoutCDNL(t *testing.T) {
	r, err := NewR(carryTestConfig(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if r.carry != nil {
		t.Fatal("worklist reasoner allocated a CarryState")
	}
}
