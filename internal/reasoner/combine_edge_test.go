package reasoner

import (
	"testing"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/solve"
	"streamrule/internal/rdf"
)

func mkAns(names ...string) *solve.AnswerSet {
	var atoms []ast.Atom
	for _, n := range names {
		atoms = append(atoms, ast.NewAtom(n))
	}
	return solve.NewAnswerSet(atoms)
}

func TestCombineEmptyPartitionList(t *testing.T) {
	if got := Combine(nil, 64); got != nil {
		t.Errorf("Combine(nil) = %v, want nil", got)
	}
	if got := Combine([][]*solve.AnswerSet{}, 64); got != nil {
		t.Errorf("Combine(empty) = %v, want nil", got)
	}
}

func TestCombineCapHit(t *testing.T) {
	// 3 x 3 distinct singleton answers: 9 combinations, capped at 4. The
	// sets are pairwise distinct, so the cap must bite exactly.
	got := Combine([][]*solve.AnswerSet{
		{mkAns("a1"), mkAns("a2"), mkAns("a3")},
		{mkAns("b1"), mkAns("b2"), mkAns("b3")},
	}, 4)
	if len(got) != 4 {
		t.Fatalf("capped combinations = %d, want exactly 4", len(got))
	}
	seen := map[string]bool{}
	for _, c := range got {
		if c.Len() != 2 {
			t.Errorf("combination %v should union one answer per partition", c)
		}
		if sig := c.String(); seen[sig] {
			t.Errorf("duplicate combination %s", sig)
		} else {
			seen[sig] = true
		}
	}
	// A cap of 1 keeps only the first combination.
	if got := Combine([][]*solve.AnswerSet{{mkAns("a")}, {mkAns("b"), mkAns("c")}}, 1); len(got) != 1 {
		t.Errorf("cap 1 yielded %d combinations", len(got))
	}
}

func TestCombineDuplicatesAcrossPartitions(t *testing.T) {
	// Identical answer sets in different partitions: all unions coincide.
	got := Combine([][]*solve.AnswerSet{{mkAns("x")}, {mkAns("x")}}, 64)
	if len(got) != 1 {
		t.Fatalf("combinations = %d, want 1", len(got))
	}
	if got[0].Len() != 1 || !got[0].Contains("x") {
		t.Errorf("combined = %v, want {x}", got[0])
	}

	// Overlapping answers across partitions: {a,a}={a}, {a,b}, {b,a}={a,b},
	// {b,b}={b} — union symmetry collapses the cross product from 4 to 3.
	got = Combine([][]*solve.AnswerSet{
		{mkAns("a"), mkAns("b")},
		{mkAns("a"), mkAns("b")},
	}, 64)
	if len(got) != 3 {
		t.Fatalf("combinations = %d, want 3 after union dedup", len(got))
	}
}

func TestDuplicationShareFormula(t *testing.T) {
	// 100-item window, 10 items skipped (no input predicate), the remaining
	// 90 routed with 30 duplicated copies: share = 30/120.
	out := &Output{RoutedItems: 120, Skipped: 10}
	if got, want := out.DuplicationShare(100), 0.25; got != want {
		t.Errorf("share = %v, want %v", got, want)
	}
	// No duplication: routed = window - skipped.
	out = &Output{RoutedItems: 90, Skipped: 10}
	if got := out.DuplicationShare(100); got != 0 {
		t.Errorf("share = %v, want 0", got)
	}
	// Nothing routed at all (every item skipped): no division by zero.
	out = &Output{RoutedItems: 0, Skipped: 100}
	if got := out.DuplicationShare(100); got != 0 {
		t.Errorf("share = %v, want 0", got)
	}
}

func TestDuplicationShareWithSkippedItems(t *testing.T) {
	// End-to-end: a window containing triples of an unknown predicate. The
	// skipped items must not count as duplicated copies, so a plan without
	// duplication reports share 0 even with skips present.
	cfg := configFor(t, programP)
	pr, err := NewPR(cfg, NewPlanPartitioner(planFor(t, programP)))
	if err != nil {
		t.Fatal(err)
	}
	window := append([]rdf.Triple(nil), paperWindow...)
	window = append(window,
		rdf.Triple{S: "x1", P: "unrelated_pred", O: "y1"},
		rdf.Triple{S: "x2", P: "unrelated_pred", O: "y2"},
	)
	out, err := pr.Process(window)
	if err != nil {
		t.Fatal(err)
	}
	if out.Skipped != 2 {
		t.Fatalf("skipped = %d, want 2", out.Skipped)
	}
	if share := out.DuplicationShare(len(window)); share != 0 {
		t.Errorf("program P has a disconnected input graph: share = %v, want 0", share)
	}
}
