package reasoner

import "streamrule/internal/asp/solve"

// AccuracyOf computes the accuracy of a single answer against a reference
// answer list, per §III of the paper:
//
//	acc(ansᵢ) = max_j |ansᵢ ∩ ansⱼ| / |ansⱼ|
//
// An empty reference answer is vacuously recovered (ratio 1).
func AccuracyOf(ans *solve.AnswerSet, ref []*solve.AnswerSet) float64 {
	best := 0.0
	for _, r := range ref {
		var ratio float64
		if r.Len() == 0 {
			ratio = 1
		} else {
			ratio = float64(ans.IntersectCount(r)) / float64(r.Len())
		}
		if ratio > best {
			best = ratio
		}
	}
	return best
}

// Accuracy aggregates AccuracyOf over all answers produced by the parallel
// reasoner: the mean accuracy across ansᵢ ∈ got. Edge cases: if both sides
// are empty the answer is perfectly recovered (1); if got is empty but the
// reference is not, nothing was recovered (0); if the reference is empty but
// got produced answers, every answer is vacuously accurate (1).
func Accuracy(got, ref []*solve.AnswerSet) float64 {
	if len(got) == 0 {
		if len(ref) == 0 {
			return 1
		}
		// The reference could still consist solely of empty answers.
		for _, r := range ref {
			if r.Len() > 0 {
				return 0
			}
		}
		return 1
	}
	if len(ref) == 0 {
		return 1
	}
	sum := 0.0
	for _, g := range got {
		sum += AccuracyOf(g, ref)
	}
	return sum / float64(len(got))
}
