package reasoner

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"

	"streamrule/internal/asp/parser"
	"streamrule/internal/core"
	"streamrule/internal/dfp"
	"streamrule/internal/progen"
	"streamrule/internal/rdf"
	"streamrule/internal/stream"
	"streamrule/internal/testleak"
	"streamrule/internal/transport"
)

// startWorkers spins up n loopback worker servers and returns their
// addresses. Each runs the production WorkerHandler — a full reasoner per
// session — on an ephemeral localhost port.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		srv, err := transport.NewServer("127.0.0.1:0", NewWorkerHandler(), transport.ServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve()
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	return addrs
}

func testDPROptions(src string, workers []string) DPROptions {
	return DPROptions{
		Workers:          workers,
		ProgramSource:    src,
		StragglerTimeout: 5 * time.Second,
	}
}

// runDistributedDifferential drives a DPR and two local oracles (PR of the
// same plan, plain R) over the identical emission sequence, asserting
// key-identical answers on every window (the systems are on different
// interning tables, so raw IDs are not comparable).
func runDistributedDifferential(t *testing.T, label string, dpr *DPR, prOracle *PR, rOracle *R, emissions []stream.WindowDelta) {
	t.Helper()
	for wi, wd := range emissions {
		var d *Delta
		if wd.Incremental {
			d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		got, err := dpr.ProcessDelta(wd.Window, d)
		if err != nil {
			t.Fatalf("%s window %d: DPR: %v", label, wi, err)
		}
		wantPR, err := prOracle.Process(wd.Window)
		if err != nil {
			t.Fatalf("%s window %d: PR oracle: %v", label, wi, err)
		}
		wantR, err := rOracle.Process(wd.Window)
		if err != nil {
			t.Fatalf("%s window %d: R oracle: %v", label, wi, err)
		}
		if got.Skipped != wantPR.Skipped {
			t.Fatalf("%s window %d: skipped = %d, PR oracle %d", label, wi, got.Skipped, wantPR.Skipped)
		}
		gs, ps, rs := answerKeySigs(got.Answers), answerKeySigs(wantPR.Answers), answerKeySigs(wantR.Answers)
		if !slices.Equal(gs, ps) {
			t.Fatalf("%s window %d: DPR diverges from PR\nDPR: %v\nPR:  %v", label, wi, gs, ps)
		}
		if !slices.Equal(gs, rs) {
			t.Fatalf("%s window %d: DPR diverges from monolithic R\nDPR: %v\nR:   %v", label, wi, gs, rs)
		}
	}
}

// TestDifferentialDistributedVsLocal is the acceptance centerpiece: DPR
// over k loopback workers must produce answer sets identical to the
// in-process PR and to the monolithic R on the progen harness for every
// window — including with memory budgets and rotation active on the
// workers (the budgeted variants run fresh-constant streams so worker
// tables actually rotate).
func TestDifferentialDistributedVsLocal(t *testing.T) {
	type winCfg struct{ size, step int }
	windows := []winCfg{
		{20, 5},  // the paper's sliding shape
		{20, 20}, // tumbling degenerate
	}
	programs := []struct {
		name   string
		cfg    progen.Config
		budget int
	}{
		{"flat", progen.Config{Derived: 3}, 0},
		{"negation-heavy", progen.Config{Derived: 5, UnaryInputs: 2, BinaryInputs: 2}, 0},
		{"recursive", progen.Config{Derived: 3, Recursion: true, Consts: 4}, 0},
		{"constraints", progen.Config{Derived: 4, Constraints: true}, 0},
		{"ineligible-fallback", progen.Config{Derived: 3, Ineligible: true}, 0},
		{"flat-fresh-budgeted", progen.Config{Derived: 3, Fresh: 0.6}, 96},
		{"recursive-fresh-budgeted", progen.Config{Derived: 3, Recursion: true, Consts: 4, Fresh: 0.4}, 96},
	}
	workers := startWorkers(t, 2)
	for pi, pc := range programs {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(900 + pi)))
			gp := progen.New(rnd, pc.cfg)
			prog, err := parser.Parse(gp.Src)
			if err != nil {
				t.Fatalf("generated program does not parse: %v\n%s", err, gp.Src)
			}
			cfg := Config{Program: prog, Inpre: gp.Inpre, Arities: dfp.Arities(gp.Arities)}
			var triples []rdf.Triple
			if pc.budget > 0 {
				seq := 0
				triples = gp.StreamFresh(rnd, pc.cfg, 160, &seq)
			} else {
				triples = gp.Stream(rnd, pc.cfg, 140)
			}

			analysis, err := core.Analyze(prog, gp.Inpre, 1.0)
			if err != nil {
				t.Skipf("program has no partitioning plan: %v", err)
			}

			for _, wc := range windows {
				emissions := emitWindows(triples, wc.size, wc.step)
				if len(emissions) == 0 {
					t.Fatalf("no emissions for %+v", wc)
				}
				dprCfg := cfg
				dprCfg.MemoryBudget = pc.budget
				dpr, err := NewDPR(dprCfg, NewPlanPartitioner(analysis.Plan), testDPROptions(gp.Src, workers))
				if err != nil {
					t.Fatalf("NewDPR: %v", err)
				}
				prOracle, err := NewPR(cfg, NewPlanPartitioner(analysis.Plan))
				if err != nil {
					t.Fatal(err)
				}
				rOracle, err := NewR(cfg)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s[size=%d step=%d]", pc.name, wc.size, wc.step)
				runDistributedDifferential(t, label, dpr, prOracle, rOracle, emissions)

				ts := dpr.TransportStats()
				if ts.RemoteWindows == 0 {
					t.Errorf("%s: every partition window fell back locally; the distributed path was never exercised", label)
				}
				if ts.LocalFallbacks > 0 {
					t.Errorf("%s: %d unexpected local fallbacks with healthy workers", label, ts.LocalFallbacks)
				}
				if pc.budget > 0 && ts.WorkerRotations == 0 {
					t.Errorf("%s: fresh-constant stream with budget %d never rotated a worker table", label, pc.budget)
				}
				dpr.Close()
			}
		})
	}
}

// TestDistributedDictionaryHitRate pins the steady-state wire economics on
// a repeating-constant stream (the paper's program P): after the first
// windows every symbol is already in the per-worker dictionaries, so the
// deltas are empty, nothing new is shipped, and the hit rate exceeds 90%.
func TestDistributedDictionaryHitRate(t *testing.T) {
	src := `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
give_notification(X) :- traffic_jam(X).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inpre := []string{"average_speed", "car_number", "traffic_light"}
	cfg := Config{Program: prog, Inpre: inpre, OutputPreds: []string{"traffic_jam", "give_notification"}}

	// Bounded vocabulary: 6 locations recurring forever. Traffic lights are
	// rare so traffic_jam actually derives most windows (non-empty answers
	// are what exercise the dictionary).
	rnd := rand.New(rand.NewSource(41))
	var triples []rdf.Triple
	for i := 0; i < 900; i++ {
		loc := fmt.Sprintf("l%d", rnd.Intn(6))
		switch v := rnd.Intn(10); {
		case v < 5:
			triples = append(triples, rdf.Triple{S: loc, P: "average_speed", O: fmt.Sprint(rnd.Intn(40))})
		case v < 9:
			triples = append(triples, rdf.Triple{S: loc, P: "car_number", O: fmt.Sprint(30 + rnd.Intn(40))})
		default:
			triples = append(triples, rdf.Triple{S: "l5", P: "traffic_light", O: "true"})
		}
	}
	emissions := emitWindows(triples, 90, 30)

	analysis, err := core.Analyze(prog, inpre, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	workers := startWorkers(t, 2)
	dpr, err := NewDPR(cfg, NewPlanPartitioner(analysis.Plan), testDPROptions(src, workers))
	if err != nil {
		t.Fatal(err)
	}
	defer dpr.Close()

	var shippedEarly int64
	for wi, wd := range emissions {
		var d *Delta
		if wd.Incremental {
			d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		if _, err := dpr.ProcessDelta(wd.Window, d); err != nil {
			t.Fatalf("window %d: %v", wi, err)
		}
		if wi == 2 {
			shippedEarly = dpr.TransportStats().DictShipped
		}
	}
	ts := dpr.TransportStats()
	if ts.RemoteWindows == 0 || ts.DictRefs == 0 {
		t.Fatalf("distributed path never exercised: %+v", ts)
	}
	if hr := ts.DictHitRate(); hr <= 0.9 {
		t.Errorf("dictionary hit rate %.3f, want > 0.9 (refs %d, shipped %d)", hr, ts.DictRefs, ts.DictShipped)
	}
	if shippedEarly == 0 {
		t.Error("nothing shipped in the first windows; the dictionary was never populated")
	}
	if ts.DictShipped != shippedEarly {
		t.Errorf("dictionary kept shipping on a repeating vocabulary: %d entries after window 2, %d at the end",
			shippedEarly, ts.DictShipped)
	}
	if st := dpr.Stats(); st.Transport == nil || st.Transport.BytesSent == 0 {
		t.Error("Stats() does not surface transport metrics")
	}
}

// distributedFixture builds a small paper-shaped program, stream, and
// oracles for the failure-mode tests.
type distributedFixture struct {
	src       string
	cfg       Config
	plan      *core.Analysis
	emissions []stream.WindowDelta
}

func newDistributedFixture(t *testing.T) *distributedFixture {
	t.Helper()
	src := `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inpre := []string{"average_speed", "car_number", "traffic_light"}
	cfg := Config{Program: prog, Inpre: inpre, OutputPreds: []string{"traffic_jam"}}
	rnd := rand.New(rand.NewSource(77))
	var triples []rdf.Triple
	for i := 0; i < 400; i++ {
		loc := fmt.Sprintf("l%d", rnd.Intn(5))
		switch v := rnd.Intn(10); {
		case v < 5:
			triples = append(triples, rdf.Triple{S: loc, P: "average_speed", O: fmt.Sprint(rnd.Intn(40))})
		case v < 9:
			triples = append(triples, rdf.Triple{S: loc, P: "car_number", O: fmt.Sprint(30 + rnd.Intn(40))})
		default:
			triples = append(triples, rdf.Triple{S: "l4", P: "traffic_light", O: "true"})
		}
	}
	analysis, err := core.Analyze(prog, inpre, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return &distributedFixture{
		src:       src,
		cfg:       cfg,
		plan:      analysis,
		emissions: emitWindows(triples, 60, 20),
	}
}

// assertWindow checks one DPR window against a fresh-grounding R oracle.
func (f *distributedFixture) assertWindow(t *testing.T, wi int, dpr *DPR, oracle *R, wd stream.WindowDelta) {
	t.Helper()
	var d *Delta
	if wd.Incremental {
		d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
	}
	got, err := dpr.ProcessDelta(wd.Window, d)
	if err != nil {
		t.Fatalf("window %d: DPR: %v", wi, err)
	}
	want, err := oracle.Process(wd.Window)
	if err != nil {
		t.Fatalf("window %d: oracle: %v", wi, err)
	}
	if gs, ws := answerKeySigs(got.Answers), answerKeySigs(want.Answers); !slices.Equal(gs, ws) {
		t.Fatalf("window %d: answers diverge\nDPR:    %v\noracle: %v", wi, gs, ws)
	}
}

// TestDistributedWorkerDeathFallsBack kills the only worker mid-run: the
// coordinator must keep producing correct answers through the local
// fallback, without erroring a single window.
func TestDistributedWorkerDeathFallsBack(t *testing.T) {
	t.Cleanup(testleak.Check(t))
	f := newDistributedFixture(t)
	srv, err := transport.NewServer("127.0.0.1:0", NewWorkerHandler(), transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	opts := testDPROptions(f.src, []string{srv.Addr()})
	opts.StragglerTimeout = 2 * time.Second
	opts.DialTimeout = time.Second
	dpr, err := NewDPR(f.cfg, NewPlanPartitioner(f.plan.Plan), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dpr.Close()
	oracle, err := NewR(f.cfg)
	if err != nil {
		t.Fatal(err)
	}

	killAt := len(f.emissions) / 2
	for wi, wd := range f.emissions {
		if wi == killAt {
			srv.Close() // the worker dies between windows; sessions break mid-stream
		}
		f.assertWindow(t, wi, dpr, oracle, wd)
	}
	ts := dpr.TransportStats()
	if ts.RemoteWindows == 0 {
		t.Error("worker never served a window before dying")
	}
	if ts.LocalFallbacks == 0 {
		t.Error("worker death never forced a local fallback")
	}
}

// TestDistributedWorkerRestartReplaysDictionary restarts the worker on the
// same address mid-run: the coordinator must redial, the fresh session must
// re-ship its dictionary from scratch (the delta replay), and answers must
// stay correct throughout.
func TestDistributedWorkerRestartReplaysDictionary(t *testing.T) {
	t.Cleanup(testleak.Check(t))
	f := newDistributedFixture(t)
	srv, err := transport.NewServer("127.0.0.1:0", NewWorkerHandler(), transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	addr := srv.Addr()

	opts := testDPROptions(f.src, []string{addr})
	opts.StragglerTimeout = 2 * time.Second
	opts.DialTimeout = time.Second
	dpr, err := NewDPR(f.cfg, NewPlanPartitioner(f.plan.Plan), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dpr.Close()
	oracle, err := NewR(f.cfg)
	if err != nil {
		t.Fatal(err)
	}

	restartAt := len(f.emissions) / 2
	var shippedBefore int64
	for wi, wd := range f.emissions {
		if wi == restartAt {
			shippedBefore = dpr.TransportStats().DictShipped
			srv.Close()
			srv, err = transport.NewServer(addr, NewWorkerHandler(), transport.ServerOptions{})
			if err != nil {
				t.Fatalf("restart worker on %s: %v", addr, err)
			}
			go srv.Serve()
		}
		f.assertWindow(t, wi, dpr, oracle, wd)
	}
	defer srv.Close()

	ts := dpr.TransportStats()
	if ts.Redials == 0 {
		t.Error("coordinator never redialed the restarted worker")
	}
	if shippedBefore == 0 {
		t.Fatal("nothing shipped before the restart; the replay assertion is vacuous")
	}
	if ts.DictShipped <= shippedBefore {
		t.Errorf("restarted session never re-shipped its dictionary (%d entries before restart, %d after)",
			shippedBefore, ts.DictShipped)
	}
	if ts.RemoteWindows <= int64(restartAt) {
		t.Errorf("no remote windows after the restart (remote %d, restart at %d)", ts.RemoteWindows, restartAt)
	}
}

// TestDistributedTinyFrameFallsBack caps frames below any real window: every
// round must fail cleanly and the coordinator must still produce correct
// answers locally.
func TestDistributedTinyFrameFallsBack(t *testing.T) {
	t.Cleanup(testleak.Check(t))
	f := newDistributedFixture(t)
	srv, err := transport.NewServer("127.0.0.1:0", NewWorkerHandler(), transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	opts := testDPROptions(f.src, []string{srv.Addr()})
	opts.MaxFrame = 640 // the handshake fits; no window does
	opts.StragglerTimeout = 2 * time.Second
	dpr, err := NewDPR(f.cfg, NewPlanPartitioner(f.plan.Plan), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dpr.Close()
	oracle, err := NewR(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for wi, wd := range f.emissions[:4] {
		f.assertWindow(t, wi, dpr, oracle, wd)
	}
	if ts := dpr.TransportStats(); ts.LocalFallbacks == 0 {
		t.Error("oversized frames never forced a local fallback")
	}
}

// TestNewDPRRequiresReachableWorker pins the fail-fast contract: a fleet
// where no worker is reachable is a configuration error, not a silent
// all-local deployment.
func TestNewDPRRequiresReachableWorker(t *testing.T) {
	f := newDistributedFixture(t)
	opts := testDPROptions(f.src, []string{"127.0.0.1:1"})
	opts.DialTimeout = 200 * time.Millisecond
	if _, err := NewDPR(f.cfg, NewPlanPartitioner(f.plan.Plan), opts); err == nil {
		t.Fatal("NewDPR succeeded with no reachable worker")
	}
}
