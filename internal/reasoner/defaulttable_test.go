package reasoner

import (
	"math/rand"
	"testing"

	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
	"streamrule/internal/dfp"
	"streamrule/internal/progen"
	"streamrule/internal/stream"
)

// TestBudgetedRunLeavesDefaultTableFlat is the end-to-end regression test for
// the solve.NewAnswerSet / idForm default-table leak: a budgeted reasoner owns
// a private rotating table, so a multi-window run over a fresh-constant stream
// must not grow the process-wide default table by a single entry. Before the
// fix, answer-set construction and the grounder's ID-form fallback interned
// every model atom into intern.Default(), which refuses rotation — unbounded
// cross-tenant growth under multi-tenant serving.
func TestBudgetedRunLeavesDefaultTableFlat(t *testing.T) {
	programs := []struct {
		name string
		cfg  progen.Config
	}{
		{"flat-fresh", progen.Config{Derived: 3, Fresh: 0.6}},
		{"recursive-fresh", progen.Config{Derived: 3, Recursion: true, Consts: 4, Fresh: 0.4}},
		{"constraints-fresh", progen.Config{Derived: 4, Constraints: true, Fresh: 0.6}},
	}
	for pi, pc := range programs {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(8100 + pi)))
			gp := progen.New(rnd, pc.cfg)
			prog, err := parser.Parse(gp.Src)
			if err != nil {
				t.Fatalf("generated program does not parse: %v\n%s", err, gp.Src)
			}
			cfg := Config{
				Program:      prog,
				Inpre:        gp.Inpre,
				Arities:      dfp.Arities(gp.Arities),
				MemoryBudget: 96,
			}
			r, err := NewR(cfg)
			if err != nil {
				t.Fatalf("NewR: %v\n%s", err, gp.Src)
			}

			seq := 0
			triples := gp.StreamFresh(rnd, pc.cfg, 220, &seq)
			emissions := emitWindows(triples, 40, 8)

			// Warm one window first so any one-time interning (e.g. shared
			// vocabulary touched lazily at startup) is out of the way, then
			// demand exact flatness across the rest of the run.
			if _, err := r.ProcessDelta(emissions[0].Window, toDelta(emissions[0])); err != nil {
				t.Fatal(err)
			}
			before := intern.Default().Stats()
			for _, em := range emissions[1:] {
				if _, err := r.ProcessDelta(em.Window, toDelta(em)); err != nil {
					t.Fatal(err)
				}
			}
			after := intern.Default().Stats()
			if after.Syms != before.Syms || after.Preds != before.Preds ||
				after.Terms != before.Terms || after.Atoms != before.Atoms {
				t.Fatalf("budgeted run grew the default table: syms %d->%d preds %d->%d terms %d->%d atoms %d->%d\nprogram:\n%s",
					before.Syms, after.Syms, before.Preds, after.Preds,
					before.Terms, after.Terms, before.Atoms, after.Atoms, gp.Src)
			}
			if st := r.Stats().Table; st.Atoms == 0 {
				t.Fatal("private table gained no atoms; run did not exercise interning")
			}
		})
	}
}

func toDelta(em stream.WindowDelta) *Delta {
	if !em.Incremental {
		return nil
	}
	return &Delta{Added: em.Added, Retracted: em.Retracted}
}
