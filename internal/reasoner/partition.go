package reasoner

import (
	"math/rand"
	"sync"

	"streamrule/internal/core"
	"streamrule/internal/rdf"
)

// Partitioner splits an input window into sub-windows. Implementations
// report the number of partitions up front so PR can size its reasoner pool.
type Partitioner interface {
	// Partition splits the window; the second result counts items dropped
	// because no partition accepts them.
	Partition(window []rdf.Triple) (parts [][]rdf.Triple, skipped int)
	// NumPartitions returns the (fixed) number of partitions produced.
	NumPartitions() int
}

// PlanPartitioner routes items by the partitioning plan produced at design
// time — Algorithm 1 of the paper: items are grouped by predicate, each
// group is added to every partition of the predicate's communities
// (duplicated predicates land in several partitions). Items of predicates
// outside the plan are dropped and counted.
type PlanPartitioner struct {
	plan *core.Plan
}

// NewPlanPartitioner wraps a partitioning plan.
func NewPlanPartitioner(plan *core.Plan) *PlanPartitioner {
	return &PlanPartitioner{plan: plan}
}

// NumPartitions implements Partitioner.
func (p *PlanPartitioner) NumPartitions() int { return p.plan.NumPartitions() }

// Partition implements Partitioner (Algorithm 1).
func (p *PlanPartitioner) Partition(window []rdf.Triple) ([][]rdf.Triple, int) {
	parts := make([][]rdf.Triple, p.plan.NumPartitions())
	// group(W): classify items by predicate (line 3).
	groups := make(map[string][]rdf.Triple)
	for _, t := range window {
		groups[t.P] = append(groups[t.P], t)
	}
	skipped := 0
	for pred, items := range groups {
		// findCommunities(ρ, g.predicate) (line 5).
		cs := p.plan.CommunitiesOf(pred)
		if len(cs) == 0 {
			skipped += len(items)
			continue
		}
		for _, c := range cs {
			parts[c] = append(parts[c], items...)
		}
	}
	return parts, skipped
}

// RandomPartitioner splits the window into K random partitions — the
// PR_Ran_k baseline of the paper's evaluation ([12]'s chunking, which
// assumes window items are independent). A fixed seed makes runs
// reproducible; Partition is safe for concurrent use.
type RandomPartitioner struct {
	K    int
	mu   sync.Mutex
	rng  *rand.Rand
	seed int64
}

// NewRandomPartitioner builds a k-way random partitioner.
func NewRandomPartitioner(k int, seed int64) *RandomPartitioner {
	return &RandomPartitioner{K: k, rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// NumPartitions implements Partitioner.
func (p *RandomPartitioner) NumPartitions() int { return p.K }

// Partition implements Partitioner: each item goes to one partition chosen
// uniformly at random.
func (p *RandomPartitioner) Partition(window []rdf.Triple) ([][]rdf.Triple, int) {
	parts := make([][]rdf.Triple, p.K)
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, t := range window {
		k := p.rng.Intn(p.K)
		parts[k] = append(parts[k], t)
	}
	return parts, 0
}

// WholeWindowPartitioner passes the window through unchanged (one
// partition). Composing it with PR yields exactly the baseline R plus the
// partition/combine bookkeeping; useful in ablations.
type WholeWindowPartitioner struct{}

// NumPartitions implements Partitioner.
func (WholeWindowPartitioner) NumPartitions() int { return 1 }

// Partition implements Partitioner.
func (WholeWindowPartitioner) Partition(window []rdf.Triple) ([][]rdf.Triple, int) {
	return [][]rdf.Triple{window}, 0
}
