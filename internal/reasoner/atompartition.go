package reasoner

import (
	"fmt"

	"streamrule/internal/atomdep"
	"streamrule/internal/core"
	"streamrule/internal/dfp"
	"streamrule/internal/rdf"
)

// AtomPartitioner extends the plan partitioner with the atom-level analysis
// of the paper's future work (§VI): inside every community whose derivations
// join on a single key, items are further hash-split into m sub-partitions
// by key value. Communities that are not atom-splittable keep one partition,
// so the partitioner degrades to the predicate-level plan where the analysis
// cannot prove exactness.
type AtomPartitioner struct {
	plan    *core.Plan
	keys    *atomdep.Analysis
	arities dfp.Arities
	m       int
	// base[c] is the first global partition index of community c;
	// width[c] is its number of sub-partitions (m or 1).
	base, width []int
	total       int
}

// NewAtomPartitioner builds the two-level partitioner: plan communities
// outer, hash buckets (fan-out m) inner. The arity table says which triple
// field carries each predicate's key argument.
func NewAtomPartitioner(plan *core.Plan, keys *atomdep.Analysis, arities dfp.Arities, m int) (*AtomPartitioner, error) {
	if m < 1 {
		return nil, fmt.Errorf("reasoner: atom fan-out m must be >= 1, got %d", m)
	}
	p := &AtomPartitioner{plan: plan, keys: keys, arities: arities, m: m}
	for c := range plan.Communities {
		w := 1
		if keys.KeysFor(c) != nil {
			w = m
		}
		p.base = append(p.base, p.total)
		p.width = append(p.width, w)
		p.total += w
	}
	return p, nil
}

// NumPartitions implements Partitioner.
func (p *AtomPartitioner) NumPartitions() int { return p.total }

// SplittableCommunities returns how many communities were atom-splittable.
func (p *AtomPartitioner) SplittableCommunities() int {
	n := 0
	for _, w := range p.width {
		if w > 1 {
			n++
		}
	}
	return n
}

// Partition implements Partitioner: Algorithm 1 at the community level, then
// a key hash at the atom level.
func (p *AtomPartitioner) Partition(window []rdf.Triple) ([][]rdf.Triple, int) {
	parts := make([][]rdf.Triple, p.total)
	skipped := 0
	for _, t := range window {
		cs := p.plan.CommunitiesOf(t.P)
		if len(cs) == 0 {
			skipped++
			continue
		}
		for _, c := range cs {
			if p.width[c] == 1 {
				parts[p.base[c]] = append(parts[p.base[c]], t)
				continue
			}
			pos, ok := p.keys.KeysFor(c)[t.P]
			if !ok {
				// Predicate without a key in a splittable community: route
				// everywhere to stay sound (should not happen — the analysis
				// assigns every input predicate a key).
				for b := 0; b < p.width[c]; b++ {
					parts[p.base[c]+b] = append(parts[p.base[c]+b], t)
				}
				continue
			}
			key := t.S
			if pos == 1 && p.arities[t.P] >= 2 {
				key = t.O
			}
			b := atomdep.Bucket(key, p.width[c])
			parts[p.base[c]+b] = append(parts[p.base[c]+b], t)
		}
	}
	return parts, skipped
}
