package reasoner

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"slices"
	"testing"
	"time"

	"streamrule/internal/asp/parser"
	"streamrule/internal/core"
	"streamrule/internal/dfp"
	"streamrule/internal/progen"
	"streamrule/internal/rdf"
	"streamrule/internal/stream"
	"streamrule/internal/testleak"
	"streamrule/internal/transport"
)

// runPipelinedDifferential drives a pipelined DPR through Submit/Collect at
// its configured depth — submitting ahead exactly like the Pipeline's
// submit-ahead driver — and checks every collected window against fresh PR
// and R oracles. Results must surface strictly in submission order.
func runPipelinedDifferential(t *testing.T, label string, dpr *DPR, prOracle *PR, rOracle *R, emissions []stream.WindowDelta) {
	t.Helper()
	depth := dpr.MaxInFlight()
	type pend struct {
		wi     int
		window []rdf.Triple
	}
	var queue []pend
	collect := func() {
		out, err := dpr.Collect()
		if err != nil {
			t.Fatalf("%s window %d: Collect: %v", label, queue[0].wi, err)
		}
		head := queue[0]
		queue = queue[1:]
		wantPR, err := prOracle.Process(head.window)
		if err != nil {
			t.Fatalf("%s window %d: PR oracle: %v", label, head.wi, err)
		}
		wantR, err := rOracle.Process(head.window)
		if err != nil {
			t.Fatalf("%s window %d: R oracle: %v", label, head.wi, err)
		}
		if out.Skipped != wantPR.Skipped {
			t.Fatalf("%s window %d: skipped = %d, PR oracle %d", label, head.wi, out.Skipped, wantPR.Skipped)
		}
		gs, ps, rs := answerKeySigs(out.Answers), answerKeySigs(wantPR.Answers), answerKeySigs(wantR.Answers)
		if !slices.Equal(gs, ps) {
			t.Fatalf("%s window %d: pipelined DPR diverges from PR\nDPR: %v\nPR:  %v", label, head.wi, gs, ps)
		}
		if !slices.Equal(gs, rs) {
			t.Fatalf("%s window %d: pipelined DPR diverges from monolithic R\nDPR: %v\nR:   %v", label, head.wi, gs, rs)
		}
	}
	for wi, wd := range emissions {
		var d *Delta
		if wd.Incremental {
			d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		if err := dpr.Submit(wd.Window, d); err != nil {
			t.Fatalf("%s window %d: Submit: %v", label, wi, err)
		}
		queue = append(queue, pend{wi, wd.Window})
		if len(queue) >= depth {
			collect()
		}
	}
	for len(queue) > 0 {
		collect()
	}
}

// TestDifferentialPipelinedVsSerial is the pipelining acceptance gate:
// driving the DPR submit-ahead at depth 2 and 4 must produce answer sets
// identical to the in-process PR and the monolithic R on every window, over
// the progen program classes and both window shapes — including a budgeted
// fresh-constant stream where worker tables rotate mid-pipeline.
func TestDifferentialPipelinedVsSerial(t *testing.T) {
	type winCfg struct{ size, step int }
	windows := []winCfg{
		{20, 5},  // the paper's sliding shape
		{20, 20}, // tumbling degenerate
	}
	programs := []struct {
		name   string
		cfg    progen.Config
		budget int
	}{
		{"flat", progen.Config{Derived: 3}, 0},
		{"negation-heavy", progen.Config{Derived: 5, UnaryInputs: 2, BinaryInputs: 2}, 0},
		{"recursive", progen.Config{Derived: 3, Recursion: true, Consts: 4}, 0},
		{"flat-fresh-budgeted", progen.Config{Derived: 3, Fresh: 0.6}, 96},
	}
	workers := startWorkers(t, 2)
	for pi, pc := range programs {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(1300 + pi)))
			gp := progen.New(rnd, pc.cfg)
			prog, err := parser.Parse(gp.Src)
			if err != nil {
				t.Fatalf("generated program does not parse: %v\n%s", err, gp.Src)
			}
			cfg := Config{Program: prog, Inpre: gp.Inpre, Arities: dfp.Arities(gp.Arities)}
			var triples []rdf.Triple
			if pc.budget > 0 {
				seq := 0
				triples = gp.StreamFresh(rnd, pc.cfg, 160, &seq)
			} else {
				triples = gp.Stream(rnd, pc.cfg, 140)
			}
			analysis, err := core.Analyze(prog, gp.Inpre, 1.0)
			if err != nil {
				t.Skipf("program has no partitioning plan: %v", err)
			}
			for _, wc := range windows {
				emissions := emitWindows(triples, wc.size, wc.step)
				for _, depth := range []int{2, 4} {
					dprCfg := cfg
					dprCfg.MemoryBudget = pc.budget
					opts := testDPROptions(gp.Src, workers)
					opts.MaxInFlight = depth
					dpr, err := NewDPR(dprCfg, NewPlanPartitioner(analysis.Plan), opts)
					if err != nil {
						t.Fatalf("NewDPR: %v", err)
					}
					prOracle, err := NewPR(cfg, NewPlanPartitioner(analysis.Plan))
					if err != nil {
						t.Fatal(err)
					}
					rOracle, err := NewR(cfg)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("%s[size=%d step=%d depth=%d]", pc.name, wc.size, wc.step, depth)
					runPipelinedDifferential(t, label, dpr, prOracle, rOracle, emissions)

					ts := dpr.TransportStats()
					if ts.RemoteWindows == 0 {
						t.Errorf("%s: the distributed path was never exercised", label)
					}
					if ts.LocalFallbacks > 0 {
						t.Errorf("%s: %d unexpected local fallbacks with healthy workers", label, ts.LocalFallbacks)
					}
					if len(emissions) > depth && ts.MeanInFlight() <= 1.0 {
						t.Errorf("%s: mean in-flight depth %.2f; the pipeline never filled", label, ts.MeanInFlight())
					}
					dpr.Close()
				}
			}
		})
	}
}

// TestDistributedWorkerDeathMidPipeline kills the only worker while windows
// are in flight: the already-submitted legs lose their responses and every
// later window loses its session, yet the coordinator must keep producing
// oracle-identical answers through the local fallback.
func TestDistributedWorkerDeathMidPipeline(t *testing.T) {
	t.Cleanup(testleak.Check(t))
	f := newDistributedFixture(t)
	srv, err := transport.NewServer("127.0.0.1:0", NewWorkerHandler(), transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	opts := testDPROptions(f.src, []string{srv.Addr()})
	opts.StragglerTimeout = 2 * time.Second
	opts.DialTimeout = time.Second
	opts.MaxInFlight = 3
	dpr, err := NewDPR(f.cfg, NewPlanPartitioner(f.plan.Plan), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dpr.Close()
	oracle, err := NewR(f.cfg)
	if err != nil {
		t.Fatal(err)
	}

	depth := dpr.MaxInFlight()
	type pend struct {
		wi     int
		window []rdf.Triple
	}
	var queue []pend
	collect := func() {
		out, err := dpr.Collect()
		if err != nil {
			t.Fatalf("window %d: Collect: %v", queue[0].wi, err)
		}
		head := queue[0]
		queue = queue[1:]
		want, err := oracle.Process(head.window)
		if err != nil {
			t.Fatalf("window %d: oracle: %v", head.wi, err)
		}
		if gs, ws := answerKeySigs(out.Answers), answerKeySigs(want.Answers); !slices.Equal(gs, ws) {
			t.Fatalf("window %d: answers diverge\nDPR:    %v\noracle: %v", head.wi, gs, ws)
		}
	}
	killAt := len(f.emissions) / 2
	for wi, wd := range f.emissions {
		var d *Delta
		if wd.Incremental {
			d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		if err := dpr.Submit(wd.Window, d); err != nil {
			t.Fatalf("window %d: Submit: %v", wi, err)
		}
		queue = append(queue, pend{wi, wd.Window})
		if wi == killAt {
			// The worker dies with the pipeline full: these legs were
			// submitted and will never be answered.
			srv.Close()
		}
		if len(queue) >= depth {
			collect()
		}
	}
	for len(queue) > 0 {
		collect()
	}
	ts := dpr.TransportStats()
	if ts.RemoteWindows == 0 {
		t.Error("worker never served a window before dying")
	}
	if ts.LocalFallbacks == 0 {
		t.Error("worker death mid-pipeline never forced a local fallback")
	}
	// The books must balance: every partition window of every processed
	// window is accounted exactly once, remote or fallback — even when legs
	// flipped from remote to fallback mid-pipeline. A double count (or a
	// lost leg) here is what poisoned the rebalancer's load signal.
	if got, want := ts.RemoteWindows+ts.LocalFallbacks, int64(len(f.emissions)*dpr.NumPartitions()); got != want {
		t.Errorf("books don't balance after mid-pipeline death: remote %d + fallback %d = %d, want windows x partitions = %d",
			ts.RemoteWindows, ts.LocalFallbacks, got, want)
	}
}

// TestDistributedTinyFramePipelined caps frames below any real window with
// the pipeline enabled: every submit fails cleanly at the wire and the
// fallback must still deliver correct answers in order.
func TestDistributedTinyFramePipelined(t *testing.T) {
	f := newDistributedFixture(t)
	srv, err := transport.NewServer("127.0.0.1:0", NewWorkerHandler(), transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	opts := testDPROptions(f.src, []string{srv.Addr()})
	opts.MaxFrame = 640 // the handshake fits; no window does
	opts.StragglerTimeout = 2 * time.Second
	opts.MaxInFlight = 2
	dpr, err := NewDPR(f.cfg, NewPlanPartitioner(f.plan.Plan), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dpr.Close()
	oracle, err := NewR(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	emissions := f.emissions[:4]
	var windows [][]rdf.Triple
	for wi, wd := range emissions {
		var d *Delta
		if wd.Incremental {
			d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		if err := dpr.Submit(wd.Window, d); err != nil {
			t.Fatalf("window %d: Submit: %v", wi, err)
		}
		windows = append(windows, wd.Window)
		if len(windows) >= 2 {
			out, err := dpr.Collect()
			if err != nil {
				t.Fatalf("Collect: %v", err)
			}
			want, err := oracle.Process(windows[0])
			if err != nil {
				t.Fatal(err)
			}
			if gs, ws := answerKeySigs(out.Answers), answerKeySigs(want.Answers); !slices.Equal(gs, ws) {
				t.Fatalf("answers diverge\nDPR:    %v\noracle: %v", gs, ws)
			}
			windows = windows[1:]
		}
	}
	for len(windows) > 0 {
		out, err := dpr.Collect()
		if err != nil {
			t.Fatalf("Collect: %v", err)
		}
		want, err := oracle.Process(windows[0])
		if err != nil {
			t.Fatal(err)
		}
		if gs, ws := answerKeySigs(out.Answers), answerKeySigs(want.Answers); !slices.Equal(gs, ws) {
			t.Fatalf("answers diverge\nDPR:    %v\noracle: %v", gs, ws)
		}
		windows = windows[1:]
	}
	if ts := dpr.TransportStats(); ts.LocalFallbacks == 0 {
		t.Error("oversized frames never forced a local fallback")
	}
}

// countWriter measures what a raw-triple request protocol would have cost.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }

// TestRequestDictionaryHitRate pins the request-side wire economics on a
// repeating-vocabulary sliding stream: after warmup the coordinator ships
// only dictionary-coded deltas, so (1) the request dictionary hit rate
// exceeds 90% and (2) steady-state request bytes per window are at least 5x
// smaller than shipping each window as raw triples over the same kind of
// gob stream (the v1 protocol's request shape).
func TestRequestDictionaryHitRate(t *testing.T) {
	src := `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inpre := []string{"average_speed", "car_number", "traffic_light"}
	cfg := Config{Program: prog, Inpre: inpre, OutputPreds: []string{"traffic_jam"}}

	// Bounded vocabulary recurring forever; a long window with a small step
	// keeps the per-window overlap high — the delta-shipping sweet spot the
	// paper's sliding windows live in.
	rnd := rand.New(rand.NewSource(43))
	var triples []rdf.Triple
	for i := 0; i < 900; i++ {
		loc := fmt.Sprintf("l%d", rnd.Intn(6))
		switch v := rnd.Intn(10); {
		case v < 5:
			triples = append(triples, rdf.Triple{S: loc, P: "average_speed", O: fmt.Sprint(rnd.Intn(40))})
		case v < 9:
			triples = append(triples, rdf.Triple{S: loc, P: "car_number", O: fmt.Sprint(30 + rnd.Intn(40))})
		default:
			triples = append(triples, rdf.Triple{S: "l5", P: "traffic_light", O: "true"})
		}
	}
	emissions := emitWindows(triples, 120, 20)

	analysis, err := core.Analyze(prog, inpre, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	workers := startWorkers(t, 2)
	dpr, err := NewDPR(cfg, NewPlanPartitioner(analysis.Plan), testDPROptions(src, workers))
	if err != nil {
		t.Fatal(err)
	}
	defer dpr.Close()

	// The raw baseline: the same windows as one persistent gob stream of
	// (seq, []Triple) messages — what request shipping cost before the
	// dictionary-coded deltas.
	var raw countWriter
	rawEnc := gob.NewEncoder(&raw)
	type rawReq struct {
		Seq    uint64
		Window []rdf.Triple
	}

	const warmup = 3
	var sentWarm, rawWarm int64
	for wi, wd := range emissions {
		var d *Delta
		if wd.Incremental {
			d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		if _, err := dpr.ProcessDelta(wd.Window, d); err != nil {
			t.Fatalf("window %d: %v", wi, err)
		}
		if err := rawEnc.Encode(rawReq{Seq: uint64(wi), Window: wd.Window}); err != nil {
			t.Fatal(err)
		}
		if wi == warmup-1 {
			sentWarm = dpr.TransportStats().BytesSent
			rawWarm = raw.n
		}
	}
	ts := dpr.TransportStats()
	if ts.RemoteWindows == 0 || ts.LocalFallbacks > 0 {
		t.Fatalf("distributed path compromised: %+v", ts)
	}
	if ts.ReqDictRefs == 0 {
		t.Fatal("no request-side dictionary references recorded")
	}
	if hr := ts.ReqDictHitRate(); hr <= 0.9 {
		t.Errorf("request dictionary hit rate %.3f, want > 0.9 (refs %d, shipped %d)",
			hr, ts.ReqDictRefs, ts.ReqDictShipped)
	}
	if ts.DeltaPartWindows == 0 {
		t.Error("no partition window ever shipped as a delta")
	}
	steady := int64(len(emissions) - warmup)
	if steady <= 0 {
		t.Fatal("not enough windows past warmup")
	}
	reqPerWin := (ts.BytesSent - sentWarm) / steady
	rawPerWin := (raw.n - rawWarm) / steady
	if reqPerWin <= 0 || rawPerWin <= 0 {
		t.Fatalf("degenerate byte counts: req %d/win, raw %d/win", reqPerWin, rawPerWin)
	}
	if rawPerWin < 5*reqPerWin {
		t.Errorf("steady-state request traffic %dB/win vs %dB/win raw: less than the 5x reduction gate",
			reqPerWin, rawPerWin)
	}
}

// delayedCopy relays src to dst delivering every chunk delay later, without
// throttling throughput — pure added latency, like a long link.
func delayedCopy(dst, src net.Conn, delay time.Duration) {
	type chunk struct {
		at   time.Time
		data []byte
	}
	ch := make(chan chunk, 1024)
	go func() {
		defer close(ch)
		for {
			buf := make([]byte, 32<<10)
			n, err := src.Read(buf)
			if n > 0 {
				ch <- chunk{at: time.Now().Add(delay), data: buf[:n]}
			}
			if err != nil {
				return
			}
		}
	}()
	defer dst.Close()
	for c := range ch {
		time.Sleep(time.Until(c.at))
		if _, err := dst.Write(c.data); err != nil {
			go func() {
				for range ch {
				}
			}()
			return
		}
	}
}

// startLatencyProxy fronts target with a TCP proxy adding delay in each
// direction (so one request/response round pays 2*delay of wire latency).
func startLatencyProxy(t *testing.T, target string, delay time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				conn.Close()
				continue
			}
			go delayedCopy(up, conn, delay)
			go delayedCopy(conn, up, delay)
		}
	}()
	return ln.Addr().String()
}

// TestPipelinedDPRBeatsSerial is the latency acceptance gate: behind a link
// with injected latency, the pipelined engine (depth 3) must finish the same
// stream at least 1.5x faster than lockstep — with identical answers. The
// serial run pays the round trip on every window; the pipelined run pays it
// roughly once.
func TestPipelinedDPRBeatsSerial(t *testing.T) {
	f := newDistributedFixture(t)
	srv, err := transport.NewServer("127.0.0.1:0", NewWorkerHandler(), transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	proxy := startLatencyProxy(t, srv.Addr(), 25*time.Millisecond)

	runSerial := func() ([][]string, time.Duration) {
		opts := testDPROptions(f.src, []string{proxy})
		dpr, err := NewDPR(f.cfg, NewPlanPartitioner(f.plan.Plan), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer dpr.Close()
		var sigs [][]string
		start := time.Now()
		for wi, wd := range f.emissions {
			var d *Delta
			if wd.Incremental {
				d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
			}
			out, err := dpr.ProcessDelta(wd.Window, d)
			if err != nil {
				t.Fatalf("serial window %d: %v", wi, err)
			}
			sigs = append(sigs, answerKeySigs(out.Answers))
		}
		elapsed := time.Since(start)
		if ts := dpr.TransportStats(); ts.LocalFallbacks > 0 {
			t.Fatalf("serial run fell back locally %d times; the timing is meaningless", ts.LocalFallbacks)
		}
		return sigs, elapsed
	}
	runPipelined := func(depth int) ([][]string, time.Duration) {
		opts := testDPROptions(f.src, []string{proxy})
		opts.MaxInFlight = depth
		dpr, err := NewDPR(f.cfg, NewPlanPartitioner(f.plan.Plan), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer dpr.Close()
		var sigs [][]string
		inFlight := 0
		start := time.Now()
		for wi, wd := range f.emissions {
			var d *Delta
			if wd.Incremental {
				d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
			}
			if err := dpr.Submit(wd.Window, d); err != nil {
				t.Fatalf("pipelined window %d: Submit: %v", wi, err)
			}
			inFlight++
			if inFlight == depth {
				out, err := dpr.Collect()
				if err != nil {
					t.Fatalf("pipelined Collect: %v", err)
				}
				sigs = append(sigs, answerKeySigs(out.Answers))
				inFlight--
			}
		}
		for ; inFlight > 0; inFlight-- {
			out, err := dpr.Collect()
			if err != nil {
				t.Fatalf("pipelined Collect: %v", err)
			}
			sigs = append(sigs, answerKeySigs(out.Answers))
		}
		elapsed := time.Since(start)
		ts := dpr.TransportStats()
		if ts.LocalFallbacks > 0 {
			t.Fatalf("pipelined run fell back locally %d times; the timing is meaningless", ts.LocalFallbacks)
		}
		if ts.MeanInFlight() <= 1.2 {
			t.Errorf("mean in-flight depth %.2f; the pipeline never filled", ts.MeanInFlight())
		}
		return sigs, elapsed
	}

	serialSigs, serialTime := runSerial()
	pipeSigs, pipeTime := runPipelined(3)

	if len(serialSigs) != len(pipeSigs) {
		t.Fatalf("window counts diverge: serial %d, pipelined %d", len(serialSigs), len(pipeSigs))
	}
	for wi := range serialSigs {
		if !slices.Equal(serialSigs[wi], pipeSigs[wi]) {
			t.Fatalf("window %d: answers diverge between serial and pipelined\nserial:    %v\npipelined: %v",
				wi, serialSigs[wi], pipeSigs[wi])
		}
	}
	if pipeTime*3/2 > serialTime {
		t.Errorf("pipelined %v vs serial %v: speedup %.2fx, want >= 1.5x",
			pipeTime, serialTime, float64(serialTime)/float64(pipeTime))
	}
	t.Logf("serial %v, pipelined %v (%.1fx)", serialTime, pipeTime, float64(serialTime)/float64(pipeTime))
}
