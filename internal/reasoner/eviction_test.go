package reasoner

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
	"streamrule/internal/asp/solve"
	"streamrule/internal/core"
	"streamrule/internal/dfp"
	"streamrule/internal/progen"
	"streamrule/internal/rdf"
	"streamrule/internal/stream"
)

// answerKeySigs renders answer sets as table-independent signatures: the
// eviction differential compares reasoners on DIFFERENT interning tables (a
// rotating one and a frozen one), so raw IDs are not comparable and the
// atoms' canonical keys are used instead.
func answerKeySigs(answers []*solve.AnswerSet) []string {
	sigs := make([]string, len(answers))
	for i, a := range answers {
		sigs[i] = strings.Join(a.Keys(), ";")
	}
	slices.Sort(sigs)
	return sigs
}

// rotator is the manual-cadence surface shared by R and PR.
type rotator interface {
	Rotate() error
	Stats() MemoryStats
}

// runEvictionDifferential feeds the emission sequence to a reasoner with
// eviction (budget-triggered and/or manual every rotateEvery windows) and an
// identically constructed reasoner without, asserting key-identical answers
// on every window.
func runEvictionDifferential(t *testing.T, label string, evict, plain incrementalProcessor, emissions []stream.WindowDelta, rotateEvery int) {
	t.Helper()
	for wi, wd := range emissions {
		var d *Delta
		if wd.Incremental {
			d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		got, err := evict.ProcessDelta(wd.Window, d)
		if err != nil {
			t.Fatalf("%s window %d: with eviction: %v", label, wi, err)
		}
		want, err := plain.ProcessDelta(wd.Window, d)
		if err != nil {
			t.Fatalf("%s window %d: without eviction: %v", label, wi, err)
		}
		if got.Skipped != want.Skipped {
			t.Fatalf("%s window %d: skipped = %d, want %d", label, wi, got.Skipped, want.Skipped)
		}
		if got.GroundStats.Atoms != want.GroundStats.Atoms {
			t.Fatalf("%s window %d: ground atoms = %d, want %d",
				label, wi, got.GroundStats.Atoms, want.GroundStats.Atoms)
		}
		gs, ws := answerKeySigs(got.Answers), answerKeySigs(want.Answers)
		if !slices.Equal(gs, ws) {
			t.Fatalf("%s window %d: answers diverge under eviction\nwith:    %v\nwithout: %v",
				label, wi, gs, ws)
		}
		if rotateEvery > 0 && (wi+1)%rotateEvery == 0 {
			if err := evict.(rotator).Rotate(); err != nil {
				t.Fatalf("%s window %d: manual rotate: %v", label, wi, err)
			}
		}
	}
}

// TestDifferentialEvictionVsNoEviction is the eviction analogue of the
// incremental differential: randomized fresh-constant ("timestamped")
// programs and streams, across {R, PR} × window shapes × rotation cadences,
// asserting that eviction never changes an answer while actually evicting.
func TestDifferentialEvictionVsNoEviction(t *testing.T) {
	type winCfg struct{ size, step int }
	windows := []winCfg{
		{24, 6},  // the paper's sliding shape: high overlap
		{20, 20}, // tumbling degenerate: every window from scratch
		{12, 3},  // small, frequent emissions
	}
	cadences := []struct {
		name   string
		budget int
		every  int
	}{
		{"budget-tight", 96, 0},   // below the live set at times: rotates almost every window
		{"budget-loose", 1024, 0}, // rotates rarely
		{"manual-every-3", 0, 3},  // explicit cadence, no budget
	}
	programs := []struct {
		name string
		cfg  progen.Config
	}{
		{"flat-fresh", progen.Config{Derived: 3, Fresh: 0.6}},
		{"recursive-fresh", progen.Config{Derived: 3, Recursion: true, Consts: 4, Fresh: 0.4}},
		{"constraints-fresh", progen.Config{Derived: 4, Constraints: true, Fresh: 0.6}},
		// Four input predicates keep the choice rule's domain (and with it
		// the model count) small even though subjects are fresh.
		{"ineligible-fresh", progen.Config{Derived: 3, UnaryInputs: 2, BinaryInputs: 2, Ineligible: true, Fresh: 0.4}},
	}
	for pi, pc := range programs {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(500 + pi)))
			gp := progen.New(rnd, pc.cfg)
			prog, err := parser.Parse(gp.Src)
			if err != nil {
				t.Fatalf("generated program does not parse: %v\n%s", err, gp.Src)
			}
			baseCfg := Config{Program: prog, Inpre: gp.Inpre, Arities: dfp.Arities(gp.Arities)}
			seq := 0
			triples := gp.StreamFresh(rnd, pc.cfg, 220, &seq)

			for _, wc := range windows {
				emissions := emitWindows(triples, wc.size, wc.step)
				for _, cad := range cadences {
					// R with eviction vs R without. Both get private tables:
					// the rotating one must not share, and the frozen one
					// should not leak the fresh constants into the
					// process-wide default table.
					evCfg := baseCfg
					evCfg.MemoryBudget = cad.budget
					if cad.budget == 0 {
						evCfg.GroundOpts.Intern = intern.NewTable()
					}
					plainCfg := baseCfg
					plainCfg.GroundOpts.Intern = intern.NewTable()

					evR, err := NewR(evCfg)
					if err != nil {
						t.Fatalf("NewR: %v\n%s", err, gp.Src)
					}
					plainR, err := NewR(plainCfg)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("R[%s size=%d step=%d]", cad.name, wc.size, wc.step)
					runEvictionDifferential(t, label, evR, plainR, emissions, cad.every)

					evStats, plainStats := evR.Stats(), plainR.Stats()
					if cad.budget > 0 && evStats.Table.Rotations == 0 && plainStats.Table.Atoms > cad.budget {
						t.Errorf("%s: table grew to %d atoms without eviction but the budgeted reasoner never rotated",
							label, plainStats.Table.Atoms)
					}
					if evStats.Table.Rotations > 0 && evStats.Table.Atoms >= plainStats.Table.Atoms && plainStats.Table.Atoms > 0 {
						t.Errorf("%s: %d rotations left %d live atoms, no fewer than the frozen table's %d",
							label, evStats.Table.Rotations, evStats.Table.Atoms, plainStats.Table.Atoms)
					}

					// PR with eviction vs PR without, when the program has a
					// partitioning plan.
					analysis, err := core.Analyze(prog, gp.Inpre, 1.0)
					if err != nil {
						continue
					}
					evCfg = baseCfg
					evCfg.MemoryBudget = cad.budget
					if cad.budget == 0 {
						evCfg.GroundOpts.Intern = intern.NewTable()
					}
					plainCfg = baseCfg
					plainCfg.GroundOpts.Intern = intern.NewTable()
					evPR, err := NewPR(evCfg, NewPlanPartitioner(analysis.Plan))
					if err != nil {
						t.Fatal(err)
					}
					plainPR, err := NewPR(plainCfg, NewPlanPartitioner(analysis.Plan))
					if err != nil {
						t.Fatal(err)
					}
					label = fmt.Sprintf("PR[%s size=%d step=%d]", cad.name, wc.size, wc.step)
					runEvictionDifferential(t, label, evPR, plainPR, emissions, cad.every)
				}
			}
		})
	}
}

// TestEvictionPaperProgram pins eviction to the paper's program P with a
// traffic stream whose locations and vehicles churn over time, and checks
// the live-entry bound that makes unbounded streams survivable.
func TestEvictionPaperProgram(t *testing.T) {
	src := `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
give_notification(X) :- traffic_jam(X).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inpre := []string{"average_speed", "car_number", "traffic_light"}
	cfg := Config{Program: prog, Inpre: inpre, OutputPreds: []string{"traffic_jam", "give_notification"}}

	rnd := rand.New(rand.NewSource(23))
	var triples []rdf.Triple
	for i := 0; i < 600; i++ {
		// Locations churn: l<i/12> never recurs once the stream moves on —
		// the fresh-constants-per-window shape of timestamped event streams.
		loc := fmt.Sprintf("l%d", i/12)
		switch rnd.Intn(3) {
		case 0:
			triples = append(triples, rdf.Triple{S: loc, P: "average_speed", O: fmt.Sprint(rnd.Intn(40))})
		case 1:
			triples = append(triples, rdf.Triple{S: loc, P: "car_number", O: fmt.Sprint(rnd.Intn(80))})
		default:
			triples = append(triples, rdf.Triple{S: loc, P: "traffic_light", O: "true"})
		}
	}
	emissions := emitWindows(triples, 60, 15)

	const budget = 250
	evCfg := cfg
	evCfg.MemoryBudget = budget
	plainCfg := cfg
	plainCfg.GroundOpts.Intern = intern.NewTable()
	evR, err := NewR(evCfg)
	if err != nil {
		t.Fatal(err)
	}
	plainR, err := NewR(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	maxLive := 0
	for wi, wd := range emissions {
		var d *Delta
		if wd.Incremental {
			d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		got, err := evR.ProcessDelta(wd.Window, d)
		if err != nil {
			t.Fatalf("window %d: %v", wi, err)
		}
		want, err := plainR.ProcessDelta(wd.Window, d)
		if err != nil {
			t.Fatalf("window %d: oracle: %v", wi, err)
		}
		if gs, ws := answerKeySigs(got.Answers), answerKeySigs(want.Answers); !slices.Equal(gs, ws) {
			t.Fatalf("window %d: answers diverge under eviction\nwith:    %v\nwithout: %v", wi, gs, ws)
		}
		if live := evR.Stats().Table.Atoms; live > maxLive {
			maxLive = live
		}
	}
	st := evR.Stats()
	if st.Table.Rotations == 0 {
		t.Error("fresh-constant stream never triggered a rotation")
	}
	// Between windows the table may exceed the budget by at most one
	// window's worth of new atoms (rotation runs after each window).
	if headroom := 200; maxLive > budget+headroom {
		t.Errorf("live atoms peaked at %d, want <= %d+%d", maxLive, budget, headroom)
	}
	if frozen := plainR.Stats().Table.Atoms; frozen <= budget {
		t.Errorf("control without eviction holds only %d atoms; the budget assertion is vacuous", frozen)
	}
}
