package reasoner

import (
	"math/rand"
	"time"
)

// BreakerOptions tunes the per-worker-session circuit breaker. The breaker
// replaces the old bare doubling redial delay: consecutive failures open
// the circuit, quarantining the session behind capped, jittered exponential
// backoff, and a half-open probe decides between closing it again and a
// longer quarantine. Jitter keeps a fleet's sessions from resynchronizing
// their retry storms after a shared outage.
type BreakerOptions struct {
	// Threshold is the number of consecutive failures (dial errors,
	// transport breaks, desyncs, stragglers, failed heartbeats) that open
	// the circuit (0 = 3).
	Threshold int
	// BaseDelay is the first quarantine interval (0 = 250ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth of quarantine intervals
	// (0 = 15s).
	MaxDelay time.Duration
	// Jitter is the ± fraction applied to every quarantine interval
	// (0 = 0.2; valid range (0, 1]).
	Jitter float64
}

// withDefaults fills the zero values.
func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Threshold <= 0 {
		o.Threshold = 3
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 250 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 15 * time.Second
	}
	if o.Jitter <= 0 || o.Jitter > 1 {
		o.Jitter = 0.2
	}
	return o
}

// breaker is the per-session state machine: closed (normal) → open
// (quarantined until a deadline) → half-open (one probe allowed) → closed
// on probe success, or open again with a doubled delay on probe failure.
// Not safe for concurrent use; the DPR serializes access per session.
type breaker struct {
	opts BreakerOptions
	now  func() time.Time // injectable clock for deterministic tests
	rnd  func() float64   // injectable jitter source

	fails    int       // consecutive failures since the last success
	level    int       // backoff exponent: opens since the last success
	until    time.Time // quarantine deadline while open
	halfOpen bool      // quarantine elapsed; exactly one probe in progress
	opens    int64     // total opens (stat)
}

func newBreaker(opts BreakerOptions, now func() time.Time, rnd func() float64) *breaker {
	if now == nil {
		now = time.Now
	}
	if rnd == nil {
		rnd = rand.Float64
	}
	return &breaker{opts: opts.withDefaults(), now: now, rnd: rnd}
}

// allow reports whether an attempt may be made now. While open it returns
// false until the quarantine elapses, then admits the half-open probe.
func (b *breaker) allow() bool {
	if b.until.IsZero() {
		return true
	}
	if b.now().Before(b.until) {
		return false
	}
	b.halfOpen = true
	return true
}

// success closes the circuit and resets the backoff.
func (b *breaker) success() {
	b.fails = 0
	b.level = 0
	b.until = time.Time{}
	b.halfOpen = false
}

// failure records one failed attempt. At Threshold consecutive failures —
// or immediately, when the failure is the half-open probe — the circuit
// opens with the next quarantine interval.
func (b *breaker) failure() {
	b.fails++
	if b.halfOpen || b.fails >= b.opts.Threshold {
		b.open()
	}
}

// open starts a quarantine of BaseDelay·2^level, capped at MaxDelay, with
// ±Jitter applied.
func (b *breaker) open() {
	d := b.opts.BaseDelay
	for i := 0; i < b.level && d < b.opts.MaxDelay; i++ {
		d *= 2
	}
	if d > b.opts.MaxDelay {
		d = b.opts.MaxDelay
	}
	jittered := time.Duration(float64(d) * (1 + b.opts.Jitter*(2*b.rnd()-1)))
	b.until = b.now().Add(jittered)
	b.level++
	b.opens++
	b.fails = 0
	b.halfOpen = false
}
