package reasoner

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func noJitter() float64                      { return 0.5 } // 2*0.5-1 = 0: exact midpoint
func testBreaker(clk *fakeClock, o BreakerOptions) *breaker {
	return newBreaker(o, clk.now, noJitter)
}

// TestBreakerRetrySchedule pins the quarantine schedule: threshold
// consecutive failures open the circuit at BaseDelay, each failed half-open
// probe doubles the delay, and the doubling caps at MaxDelay.
func TestBreakerRetrySchedule(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := testBreaker(clk, BreakerOptions{Threshold: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond})

	// Below the threshold the circuit stays closed: attempts keep flowing.
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("attempt %d blocked below threshold", i)
		}
		b.failure()
	}
	if !b.allow() {
		t.Fatal("third attempt blocked before its failure")
	}
	b.failure() // third consecutive failure: open at BaseDelay

	wantDelays := []time.Duration{
		100 * time.Millisecond, // first open
		200 * time.Millisecond, // probe failed: doubled
		400 * time.Millisecond, // doubled again
		400 * time.Millisecond, // capped at MaxDelay
		400 * time.Millisecond, // stays capped
	}
	for i, want := range wantDelays {
		if b.allow() {
			t.Fatalf("open %d: attempt allowed immediately after opening", i)
		}
		clk.advance(want - time.Millisecond)
		if b.allow() {
			t.Fatalf("open %d: attempt allowed %v early", i, time.Millisecond)
		}
		clk.advance(time.Millisecond)
		if !b.allow() {
			t.Fatalf("open %d: half-open probe blocked after %v", i, want)
		}
		// A failed half-open probe re-opens immediately (no threshold
		// accumulation) with the next delay in the schedule.
		b.failure()
	}

	// A successful probe closes the circuit and resets the schedule.
	clk.advance(time.Hour)
	if !b.allow() {
		t.Fatal("probe blocked after the final quarantine")
	}
	b.success()
	if !b.allow() {
		t.Fatal("closed breaker blocked an attempt")
	}
	b.failure()
	b.failure()
	b.failure()
	if b.allow() {
		t.Fatal("breaker did not re-open at threshold after a reset")
	}
	clk.advance(100*time.Millisecond + time.Millisecond)
	if !b.allow() {
		t.Fatal("post-reset quarantine did not restart at BaseDelay")
	}
	// 1 threshold open + 5 probe-failure re-opens + 1 post-reset open.
	if b.opens != 7 {
		t.Fatalf("opens = %d, want 7", b.opens)
	}
}

// TestBreakerJitterBounds: quarantine deadlines must stay inside
// [d·(1-j), d·(1+j)] for extreme jitter draws.
func TestBreakerJitterBounds(t *testing.T) {
	for _, draw := range []float64{0, 1} {
		clk := &fakeClock{t: time.Unix(2000, 0)}
		b := newBreaker(BreakerOptions{Threshold: 1, BaseDelay: time.Second, Jitter: 0.2}, clk.now, func() float64 { return draw })
		b.failure()
		want := time.Duration(float64(time.Second) * (1 + 0.2*(2*draw-1)))
		clk.advance(want - time.Millisecond)
		if b.allow() {
			t.Fatalf("draw %v: allowed before the jittered deadline", draw)
		}
		clk.advance(2 * time.Millisecond)
		if !b.allow() {
			t.Fatalf("draw %v: blocked after the jittered deadline", draw)
		}
	}
}

// TestBreakerSuccessResetsConsecutiveCount: interleaved successes keep the
// circuit closed no matter how many total failures accumulate.
func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	clk := &fakeClock{t: time.Unix(3000, 0)}
	b := testBreaker(clk, BreakerOptions{Threshold: 3, BaseDelay: time.Second})
	for i := 0; i < 50; i++ {
		b.failure()
		b.failure()
		b.success()
	}
	if !b.allow() {
		t.Fatal("circuit opened despite never reaching threshold consecutively")
	}
	if b.opens != 0 {
		t.Fatalf("opens = %d, want 0", b.opens)
	}
}

// TestBreakerDefaults: the zero options resolve to the documented defaults.
func TestBreakerDefaults(t *testing.T) {
	o := BreakerOptions{}.withDefaults()
	if o.Threshold != 3 || o.BaseDelay != 250*time.Millisecond || o.MaxDelay != 15*time.Second || o.Jitter != 0.2 {
		t.Fatalf("unexpected defaults: %+v", o)
	}
}
