// Worker side of the distributed reasoner: a transport.Handler that builds
// one full reasoner R per session and answers windows in wire form.

package reasoner

import (
	"fmt"

	"streamrule/internal/asp/ground"
	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
	"streamrule/internal/asp/solve"
	"streamrule/internal/dfp"
	"streamrule/internal/transport"
)

// WorkerHandler builds reasoning sessions for transport.Server: each
// coordinator connection carries the program in its Hello and gets a
// private reasoner R (incremental and, when a budget is set, memory-
// bounded) plus a wire encoder. Workers are therefore program-agnostic
// processes — one worker can serve partitions of any number of programs
// and coordinators at once, one session each.
type WorkerHandler struct{}

// NewWorkerHandler returns the production session factory.
func NewWorkerHandler() *WorkerHandler { return &WorkerHandler{} }

// NewSession implements transport.Handler.
func (h *WorkerHandler) NewSession(hello *transport.Hello) (transport.Session, error) {
	prog, err := parser.Parse(hello.Program)
	if err != nil {
		return nil, fmt.Errorf("parse program: %w", err)
	}
	cfg := Config{
		Program:           prog,
		Inpre:             hello.Inpre,
		OutputPreds:       hello.OutputPreds,
		IncludeInputFacts: hello.IncludeInputFacts,
		MemoryBudget:      hello.MemoryBudget,
	}
	if len(hello.Arities) > 0 {
		cfg.Arities = dfp.Arities(hello.Arities)
	}
	cfg.SolveOpts = solve.Options{MaxModels: hello.MaxModels, NaivePropagation: hello.NaivePropagation}
	cfg.GroundOpts = ground.Options{MaxAtoms: hello.MaxAtoms}
	if cfg.MemoryBudget <= 0 {
		// Even without a budget the session owns a private table: sessions
		// come and go with their coordinators, and their vocabulary must
		// not accrete in the process-wide default table.
		cfg.GroundOpts.Intern = intern.NewTable()
	}
	r, err := NewR(cfg)
	if err != nil {
		return nil, err
	}
	return &workerSession{r: r, enc: intern.NewWireEncoder()}, nil
}

// workerSession is one live session: a reasoner plus the session's wire
// dictionary encoder. The transport serves sessions sequentially, so no
// locking is needed.
type workerSession struct {
	r   *R
	enc *intern.WireEncoder
}

// Window implements transport.Session: process the sub-window with the full
// engine (incremental unless the coordinator forces from-scratch) and
// re-key the answers into portable wire form.
func (s *workerSession) Window(req *transport.WindowReq) *transport.WindowResp {
	var out *Output
	var err error
	if req.Scratch {
		out, err = s.r.Process(req.Window)
	} else {
		out, err = s.r.ProcessAuto(req.Window)
	}
	resp := &transport.WindowResp{Seq: req.Seq}
	if err != nil {
		resp.Err = err.Error()
		return resp
	}

	tab := s.r.tab
	s.enc.Begin(tab)
	answers := make([]intern.WireSet, 0, len(out.Answers))
	for _, a := range out.Answers {
		answers = append(answers, s.enc.AppendSet(tab, a.IDs(), nil))
	}
	resp.Answers = answers
	resp.Dict = s.enc.Flush()

	resp.Skipped = out.Skipped
	resp.Incremental = out.Incremental
	resp.ConvertNS = out.Latency.Convert.Nanoseconds()
	resp.GroundNS = out.Latency.Ground.Nanoseconds()
	resp.SolveNS = out.Latency.Solve.Nanoseconds()
	resp.TotalNS = out.Latency.Total.Nanoseconds()
	resp.GroundStats = out.GroundStats
	resp.SolveStats = out.SolveStats
	ts := tab.Stats()
	resp.LiveAtoms = ts.Atoms
	resp.Rotations = ts.Rotations
	return resp
}

// Close implements transport.Session.
func (s *workerSession) Close() {}
