// Worker side of the distributed reasoner: a transport.Handler that builds
// one reasoner R per session partition and answers windows in wire form.
// Requests arrive as dictionary-coded deltas (protocol v2): the session
// mirrors the coordinator's request dictionary, reconstructs each
// partition's sub-window from its delta, reasons over the partitions in
// parallel, and ships back one worker-combined answer stream per window.

package reasoner

import (
	"fmt"
	"sync"
	"time"

	"streamrule/internal/asp/ground"
	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
	"streamrule/internal/asp/solve"
	"streamrule/internal/dfp"
	"streamrule/internal/rdf"
	"streamrule/internal/transport"
)

// WorkerHandler builds reasoning sessions for transport.Server: each
// coordinator connection carries the program in its Hello and gets one
// private reasoner R per hosted partition (incremental and, when a budget
// is set, memory-bounded via session-coordinated rotation) plus the two
// wire dictionaries of the session (request decoder, response encoder).
// Workers are therefore program-agnostic processes — one worker can serve
// partitions of any number of programs and coordinators at once, one
// session each.
type WorkerHandler struct{}

// NewWorkerHandler returns the production session factory.
func NewWorkerHandler() *WorkerHandler { return &WorkerHandler{} }

// NewSession implements transport.Handler.
func (h *WorkerHandler) NewSession(hello *transport.Hello) (transport.Session, error) {
	prog, err := parser.Parse(hello.Program)
	if err != nil {
		return nil, fmt.Errorf("parse program: %w", err)
	}
	cfg := Config{
		Program:           prog,
		Inpre:             hello.Inpre,
		OutputPreds:       hello.OutputPreds,
		IncludeInputFacts: hello.IncludeInputFacts,
	}
	if len(hello.Arities) > 0 {
		cfg.Arities = dfp.Arities(hello.Arities)
	}
	cfg.SolveOpts = solve.Options{MaxModels: hello.MaxModels, NaivePropagation: hello.NaivePropagation, CDNL: hello.CDNL}
	cfg.GroundOpts = ground.Options{MaxAtoms: hello.MaxAtoms}
	// The session owns a private table shared by its partition reasoners:
	// sessions come and go with their coordinators, and their vocabulary
	// must not accrete in the process-wide default table. Budget rotation is
	// coordinated at session level (the PR pattern: all partitions share the
	// table, so rotation runs only after all have quiesced), so the per-R
	// budget stays zero.
	cfg.GroundOpts.Intern = intern.NewTable()
	n := hello.Partitions
	if n < 1 {
		n = 1
	}
	s := &workerSession{
		tab:         cfg.GroundOpts.Intern,
		enc:         intern.NewWireEncoder(),
		reqDec:      intern.NewWireDecoder(nil),
		budget:      hello.MemoryBudget,
		budgetBytes: hello.MemoryBudgetBytes,
		maxComb:     hello.MaxCombinations,
		wins:        make([]partWindow, n),
	}
	for i := 0; i < n; i++ {
		r, err := NewR(cfg)
		if err != nil {
			return nil, err
		}
		s.rs = append(s.rs, r)
	}
	return s, nil
}

// partWindow is one partition's maintained sub-window: the triples in
// shipped order plus their multiset (sliding windows may hold duplicates).
type partWindow struct {
	cur    []rdf.Triple
	counts map[rdf.Triple]int
}

// workerSession is one live session: k partition reasoners on a shared
// private table, the response-side wire encoder, the request-side wire
// decoder, and the maintained sub-windows the request deltas apply to. The
// transport serves sessions sequentially, so no locking is needed.
type workerSession struct {
	rs          []*R
	tab         *intern.Table
	enc         *intern.WireEncoder
	reqDec      *intern.WireDecoder
	budget      int
	budgetBytes int64
	maxComb     int
	wins        []partWindow
	liveBuf     []intern.AtomID
}

// desyncResp builds the teardown response for a request the session cannot
// apply consistently.
func desyncResp(seq uint64, err error) *transport.WindowResp {
	return &transport.WindowResp{Seq: seq, Err: err.Error(), Desync: true}
}

// applyPart reconstructs partition i's sub-window from its request payload.
// The delta is applied to the maintained multiset; any inconsistency (an
// unknown symbol index, retracting an absent triple, a window-length
// mismatch) is a desync. It returns the windower-style delta for the
// incremental path (nil for full windows).
func (s *workerSession) applyPart(i int, p *transport.PartReq) (*Delta, error) {
	w := &s.wins[i]
	added, err := s.decodeTriples(p.Added)
	if err != nil {
		return nil, err
	}
	retracted, err := s.decodeTriples(p.Retracted)
	if err != nil {
		return nil, err
	}
	if p.Full {
		if len(retracted) != 0 {
			return nil, fmt.Errorf("full window carries retractions")
		}
		w.cur = added
		w.counts = nil
		if len(w.cur) != p.WindowLen {
			return nil, fmt.Errorf("full window length %d, expected %d", len(w.cur), p.WindowLen)
		}
		return nil, nil
	}
	if w.counts == nil {
		w.counts = make(map[rdf.Triple]int, len(w.cur))
		for _, t := range w.cur {
			w.counts[t]++
		}
	}
	// Retract first (multiset): drop the retracted occurrences from the
	// ordered window, preserving the order of the survivors so partition
	// reasoning is deterministic.
	drop := make(map[rdf.Triple]int, len(retracted))
	for _, t := range retracted {
		if w.counts[t] == 0 {
			return nil, fmt.Errorf("retraction of absent triple %v", t)
		}
		w.counts[t]--
		if w.counts[t] == 0 {
			delete(w.counts, t)
		}
		drop[t]++
	}
	if len(drop) > 0 {
		kept := w.cur[:0]
		for _, t := range w.cur {
			if drop[t] > 0 {
				drop[t]--
				continue
			}
			kept = append(kept, t)
		}
		w.cur = kept
	}
	for _, t := range added {
		w.counts[t]++
	}
	w.cur = append(w.cur, added...)
	if len(w.cur) != p.WindowLen {
		return nil, fmt.Errorf("window length %d after delta, expected %d", len(w.cur), p.WindowLen)
	}
	return &Delta{Added: added, Retracted: retracted}, nil
}

// decodeTriples resolves wire-coded triples (three dictionary symbol
// indexes each) back to strings through the request dictionary.
func (s *workerSession) decodeTriples(words []uint64) ([]rdf.Triple, error) {
	if len(words)%3 != 0 {
		return nil, fmt.Errorf("wire triple stream of %d words", len(words))
	}
	out := make([]rdf.Triple, 0, len(words)/3)
	for i := 0; i < len(words); i += 3 {
		sub, err := s.reqDec.SymName(words[i])
		if err != nil {
			return nil, err
		}
		pred, err := s.reqDec.SymName(words[i+1])
		if err != nil {
			return nil, err
		}
		obj, err := s.reqDec.SymName(words[i+2])
		if err != nil {
			return nil, err
		}
		out = append(out, rdf.Triple{S: sub, P: pred, O: obj})
	}
	return out, nil
}

// Window implements transport.Session: apply the request delta, process
// every partition in parallel with the full engine (incremental unless the
// coordinator forces from-scratch), combine the partitions' answers, and
// re-key them into portable wire form.
func (s *workerSession) Window(req *transport.WindowReq) *transport.WindowResp {
	if s.budget > 0 || s.budgetBytes > 0 {
		s.tab.AdvanceEpoch()
	}
	if err := s.reqDec.Apply(&req.Dict); err != nil {
		return desyncResp(req.Seq, err)
	}
	if len(req.Parts) != len(s.rs) {
		return desyncResp(req.Seq, fmt.Errorf("request carries %d partitions, session hosts %d", len(req.Parts), len(s.rs)))
	}
	deltas := make([]*Delta, len(req.Parts))
	for i := range req.Parts {
		d, err := s.applyPart(i, &req.Parts[i])
		if err != nil {
			return desyncResp(req.Seq, fmt.Errorf("partition %d: %w", i, err))
		}
		deltas[i] = d
	}

	resp := &transport.WindowResp{Seq: req.Seq}
	outs := make([]*Output, len(s.rs))
	errs := make([]error, len(s.rs))
	var wg sync.WaitGroup
	for i := range s.rs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch {
			case req.Scratch:
				outs[i], errs[i] = s.rs[i].Process(s.wins[i].cur)
			case deltas[i] != nil:
				outs[i], errs[i] = s.rs[i].ProcessDelta(s.wins[i].cur, deltas[i])
			default:
				// Full non-scratch window: self-diff against the maintained
				// grounding (seeds it on a session's first window).
				outs[i], errs[i] = s.rs[i].ProcessAuto(s.wins[i].cur)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
	}

	// Aggregate exactly like PR: latency maxima (the partitions ran in
	// parallel), work sums, fast-path/incremental ANDs.
	resp.Incremental = true
	resp.SolveStats.FastPath = true
	resp.PartTotalNS = make([]int64, len(outs))
	resp.PartItems = make([]int, len(outs))
	for i, out := range outs {
		resp.PartTotalNS[i] = out.Latency.Total.Nanoseconds()
		resp.PartItems[i] = len(s.wins[i].cur)
	}
	for _, out := range outs {
		if !out.Incremental {
			resp.Incremental = false
		}
		if !out.SolveStats.FastPath {
			resp.SolveStats.FastPath = false
		}
		resp.SolveStats.Add(out.SolveStats)
		if ns := out.Latency.Convert.Nanoseconds(); ns > resp.ConvertNS {
			resp.ConvertNS = ns
		}
		if ns := out.Latency.Ground.Nanoseconds(); ns > resp.GroundNS {
			resp.GroundNS = ns
		}
		if ns := out.Latency.Solve.Nanoseconds(); ns > resp.SolveNS {
			resp.SolveNS = ns
		}
		if ns := out.Latency.Total.Nanoseconds(); ns > resp.TotalNS {
			resp.TotalNS = ns
		}
		resp.GroundStats.Atoms += out.GroundStats.Atoms
		resp.GroundStats.Rules += out.GroundStats.Rules
		resp.GroundStats.CertainFacts += out.GroundStats.CertainFacts
		resp.GroundStats.Iterations += out.GroundStats.Iterations
		resp.Skipped += out.Skipped
	}

	// Worker-side combine: one answer stream per window regardless of how
	// many partitions the session hosts (unions are associative, so the
	// coordinator's combine across workers completes the cross product).
	t0 := time.Now()
	max := s.maxComb
	if max <= 0 {
		max = DefaultMaxCombinations
	}
	perPartition := make([][]*solve.AnswerSet, len(outs))
	for i, out := range outs {
		perPartition[i] = out.Answers
	}
	combined := Combine(perPartition, max)
	resp.CombineNS = time.Since(t0).Nanoseconds()
	resp.TotalNS += resp.CombineNS

	s.enc.Begin(s.tab)
	answers := make([]intern.WireSet, 0, len(combined))
	for _, a := range combined {
		answers = append(answers, s.enc.AppendSet(s.tab, a.IDs(), nil))
	}
	resp.Answers = answers
	resp.Dict = s.enc.Flush()

	// Session-coordinated budget rotation, after the answers left through
	// the encoder (the response no longer references table IDs): keep the
	// partitions' grounder state, drop everything else. The encoder's ID
	// caches invalidate themselves on the next Begin (the content-keyed
	// dictionary survives, nothing is re-shipped).
	if (s.budget > 0 && s.tab.NumAtoms() > s.budget) ||
		(s.budgetBytes > 0 && s.tab.ApproxBytes() > s.budgetBytes) {
		live := s.liveBuf[:0]
		for _, r := range s.rs {
			live = r.appendLive(live)
		}
		rm, err := s.tab.Rotate(live)
		s.liveBuf = live[:0]
		if err == nil {
			for _, r := range s.rs {
				r.applyRemap(rm)
			}
		}
	}
	ts := s.tab.Stats()
	resp.LiveAtoms = ts.Atoms
	resp.Rotations = ts.Rotations
	return resp
}

// Close implements transport.Session.
func (s *workerSession) Close() {}
