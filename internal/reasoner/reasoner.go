package reasoner

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/ground"
	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/solve"
	"streamrule/internal/dfp"
	"streamrule/internal/rdf"
)

// Config configures a reasoner over a fixed logic program.
type Config struct {
	// Program is the logic program P (shared read-only by all copies).
	Program *ast.Program
	// Inpre lists the input predicate names (inpre(P)).
	Inpre []string
	// Arities overrides arity inference for the input predicates.
	Arities dfp.Arities
	// GroundOpts is passed to the grounder.
	GroundOpts ground.Options
	// SolveOpts is passed to the solver.
	SolveOpts solve.Options
	// IncludeInputFacts keeps input atoms in the returned answer sets.
	// StreamRule streams only the inferred knowledge downstream, and the
	// accuracy comparison is meaningful only on derived atoms, so the
	// default (false) filters atoms of input predicates out.
	IncludeInputFacts bool
	// OutputPreds restricts answers to the given predicates (the events the
	// continuous query asks for, e.g. traffic_jam / car_fire /
	// give_notification in the paper's scenario). Empty means all derived
	// predicates. Takes precedence over IncludeInputFacts.
	OutputPreds []string
	// MemoryBudget bounds the interning table for unbounded streams: when
	// set (> 0), the reasoner owns a private table (unless GroundOpts.Intern
	// provides one) and rotates it — evicting entries no live state
	// references — whenever the atom count exceeds the budget after a
	// window. 0 disables rotation; memory is then bounded by the number of
	// DISTINCT atoms ever seen, which is fine for bounded vocabularies but
	// fatal for streams minting fresh constants every window. Budgeted
	// windows materialize their answer sets eagerly, so retained sets keep
	// valid atoms/keys across later rotations; their raw IDs are valid only
	// until the next window. See memory.go.
	//
	// Deprecated: MemoryBudget counts table ENTRIES, so N atoms over long
	// symbols can blow the real heap budget while N short ones rotate
	// needlessly. Prefer MemoryBudgetBytes; the entry-count knob remains as
	// an alias and both may be combined (rotation triggers when either is
	// exceeded).
	MemoryBudget int
	// MemoryBudgetBytes bounds the interning table by approximate retained
	// bytes (intern.Table.ApproxBytes) instead of entry count — the
	// byte-based successor of MemoryBudget, with identical rotation
	// semantics. 0 disables the byte bound.
	MemoryBudgetBytes int64
}

// budgeted reports whether any memory bound is configured.
func (c *Config) budgeted() bool { return c.MemoryBudget > 0 || c.MemoryBudgetBytes > 0 }

// Latency breaks the processing time of one window into the phases the
// paper discusses. For PR, Convert/Ground/Solve are the maxima across the
// parallel reasoners (the critical path), and Partition/Combine are the
// extra phases of the partitioned pipeline.
type Latency struct {
	Convert   time.Duration
	Ground    time.Duration
	Solve     time.Duration
	Partition time.Duration
	Combine   time.Duration
	// Total is the wall-clock time of the whole Process call.
	Total time.Duration
	// CriticalPath is the latency of the partitioned pipeline when every
	// partition runs on its own core: Partition + maxᵢ(reasonerᵢ total) +
	// Combine. On a host with at least as many idle cores as partitions it
	// coincides with Total; on a smaller host (such as a single-core
	// container, where goroutines interleave) it is the faithful stand-in
	// for the parallel latency the paper measures on its 8-core machine.
	// For the unpartitioned reasoner R it equals Total.
	CriticalPath time.Duration
}

// Output is the result of processing one window.
type Output struct {
	// Answers holds the answer sets (derived atoms only, unless
	// IncludeInputFacts is set).
	Answers []*solve.AnswerSet
	// Latency is the phase breakdown.
	Latency Latency
	// Skipped counts window items that belong to no input predicate.
	Skipped int
	// PartitionSizes lists the sub-window sizes (PR only).
	PartitionSizes []int
	// RoutedItems counts items routed into partitions including duplicated
	// copies (PR only); RoutedItems - len(window) duplicated copies were
	// created.
	RoutedItems int
	// GroundStats/SolveStats aggregate engine statistics (summed over
	// partitions for PR).
	GroundStats ground.Stats
	SolveStats  solve.Stats
	// Incremental reports that the window was grounded by delta maintenance
	// of the previous window's grounding rather than from scratch (for PR:
	// that every partition was).
	Incremental bool
}

// Delta is the change of a window relative to the previously processed one:
// the triples that entered and the triples that left (as multisets). It
// mirrors the stream layer's WindowDelta without importing it.
type Delta struct {
	Added     []rdf.Triple
	Retracted []rdf.Triple
}

// DuplicationShare returns the fraction of routed items that were duplicated
// copies — the paper reports ~25% for program P' (§IV).
func (o *Output) DuplicationShare(windowSize int) float64 {
	if o.RoutedItems == 0 {
		return 0
	}
	return float64(o.RoutedItems-windowSize+o.Skipped) / float64(o.RoutedItems)
}

// R is the baseline reasoner: it processes the entire input window with one
// grounder+solver invocation (the reasoner R of the paper).
//
// An R owns a reusable grounding instantiator and fact buffer: per-window
// scratch tables are reset, not reallocated, since sliding windows overlap
// heavily. A single R must therefore not process windows concurrently; the
// parallel reasoner PR gives every partition its own copy (all sharing one
// interning table, which is concurrency-safe).
type R struct {
	cfg     Config
	arities dfp.Arities
	inpre   map[intern.SymID]bool
	outputs map[intern.SymID]bool

	tab     *intern.Table
	inst    *ground.Instantiator
	factbuf []intern.AtomID // reusable fact-ID buffer

	// Incremental state (ProcessDelta / ProcessAuto). factRef holds the
	// multiset reference counts of the current window's facts; the
	// grounder's Update receives only the 0<->1 transitions.
	factRef    map[intern.AtomID]int32
	refScratch map[intern.AtomID]int32
	factTot    int  // non-skipped facts in the current window
	skipped    int  // skipped items in the current window
	incLive    bool // factRef and grounder state describe the last window
	incOff     bool // incremental disabled after an internal fallback
	addBuf     []intern.AtomID
	retBuf     []intern.AtomID
	addSet     []intern.AtomID
	retSet     []intern.AtomID

	// liveBuf is the reusable scratch for collecting live IDs at rotation
	// time (memory.go).
	liveBuf []intern.AtomID

	// carry holds solver state that survives across windows when the CDNL
	// engine is configured: learned clauses (premise-checked against each
	// window's ground program before replay) and branching activity. It is
	// reset on the paths that abandon window continuity (re-seed, internal
	// fallback) and remapped on table rotation.
	carry *solve.CarryState
}

// NewR builds a reasoner for the program, inferring input arities when not
// provided.
func NewR(cfg Config) (*R, error) {
	if cfg.Program == nil {
		return nil, fmt.Errorf("reasoner: nil program")
	}
	if len(cfg.Inpre) == 0 {
		return nil, fmt.Errorf("reasoner: empty inpre")
	}
	ar := cfg.Arities
	if ar == nil {
		var err error
		ar, err = dfp.InferArities(cfg.Program, cfg.Inpre)
		if err != nil {
			return nil, err
		}
	}
	if cfg.budgeted() && cfg.GroundOpts.Intern == nil {
		// A budgeted reasoner rotates its table, which invalidates interned
		// IDs; it must own the table rather than share the process-wide
		// default with unsuspecting components.
		cfg.GroundOpts.Intern = intern.NewTable()
	}
	inst, err := ground.NewInstantiator(cfg.Program, cfg.GroundOpts)
	if err != nil {
		return nil, fmt.Errorf("grounding: %w", err)
	}
	tab := inst.Table()
	inpre := make(map[intern.SymID]bool, len(cfg.Inpre))
	for _, p := range cfg.Inpre {
		inpre[tab.Sym(p)] = true
	}
	var outputs map[intern.SymID]bool
	if len(cfg.OutputPreds) > 0 {
		outputs = make(map[intern.SymID]bool, len(cfg.OutputPreds))
		for _, p := range cfg.OutputPreds {
			outputs[tab.Sym(p)] = true
		}
	}
	r := &R{cfg: cfg, arities: ar, inpre: inpre, outputs: outputs, tab: tab, inst: inst}
	if cfg.SolveOpts.CDNL {
		r.carry = &solve.CarryState{}
	}
	return r, nil
}

// resetCarry drops carried solver state on paths that abandon window
// continuity.
func (r *R) resetCarry() {
	if r.carry != nil {
		r.carry.Reset()
	}
}

// SupportsIncremental reports whether the program is statically eligible for
// incremental window maintenance (ProcessDelta/ProcessAuto engage their
// delta paths only then).
func (r *R) SupportsIncremental() bool { return r.inst.SupportsIncremental() }

// Process runs the reasoner on one window, grounding from scratch. It
// invalidates any incremental state, so it doubles as the independent oracle
// for the incremental paths below.
func (r *R) Process(window []rdf.Triple) (*Output, error) {
	r.beginWindow()
	r.incLive = false
	return r.processFull(window)
}

// ProcessDelta processes one window given the delta the windower reported
// relative to the previous emission (nil when the windower could not relate
// the windows — first emission, tumbling window). When the program supports
// incremental grounding, consecutive calls maintain the previous window's
// grounding under the delta instead of re-grounding from scratch; otherwise,
// and whenever a dynamic invariant fails (atom limit, inconsistent delta,
// delta nearly as large as the window), it falls back automatically.
func (r *R) ProcessDelta(window []rdf.Triple, d *Delta) (*Output, error) {
	r.beginWindow()
	if r.incOff || !r.inst.SupportsIncremental() {
		r.incLive = false
		return r.processFull(window)
	}
	if d == nil || !r.incLive || !r.inst.IncrementalReady() {
		if d == nil && !r.incLive {
			// No delta and no state to maintain: nothing to seed for.
			return r.processFull(window)
		}
		return r.processSeed(window)
	}
	return r.processDelta(window, d)
}

// ProcessAuto is the self-diffing incremental path: it interns the full
// window and derives the delta from the previous window's fact multiset.
// PR uses it per partition, where stream-level deltas cannot be routed
// soundly (partitioners may duplicate or reshuffle items).
func (r *R) ProcessAuto(window []rdf.Triple) (*Output, error) {
	r.beginWindow()
	if r.incOff || !r.inst.SupportsIncremental() {
		r.incLive = false
		return r.processFull(window)
	}
	if !r.incLive || !r.inst.IncrementalReady() {
		return r.processSeed(window)
	}
	return r.processDiff(window)
}

// processFull is the from-scratch path (the reasoner R of the paper).
func (r *R) processFull(window []rdf.Triple) (*Output, error) {
	return r.processFullAt(window, time.Now())
}

// processFullAt is processFull with an explicit start time, so windows that
// fall back mid-processing keep the time already spent in their latency.
func (r *R) processFullAt(window []rdf.Triple, start time.Time) (*Output, error) {
	out := &Output{}

	t0 := time.Now()
	factIDs, skipped := dfp.InternFacts(r.tab, window, r.arities, r.factbuf[:0])
	r.factbuf = factIDs
	out.Skipped = skipped
	out.Latency.Convert = time.Since(t0)

	t0 = time.Now()
	gp, err := r.inst.Ground(factIDs)
	if err != nil {
		return nil, fmt.Errorf("grounding: %w", err)
	}
	out.Latency.Ground = time.Since(t0)
	return r.solveAndFilter(out, gp, start)
}

// processSeed grounds the window from scratch while seeding the support
// counts that enable delta maintenance on the next window.
func (r *R) processSeed(window []rdf.Triple) (*Output, error) {
	return r.processSeedAt(window, time.Now())
}

func (r *R) processSeedAt(window []rdf.Triple, start time.Time) (*Output, error) {
	out := &Output{}
	r.incLive = false
	// A re-seed abandons window continuity (first window, mis-advertised
	// delta, or update failure); carried clauses remain sound — their
	// premises are re-checked per window — but the reuse contract exposed to
	// operators is "continuity ended, state dropped", matching the grounder.
	r.resetCarry()

	t0 := time.Now()
	factIDs, skipped := dfp.InternFacts(r.tab, window, r.arities, r.factbuf[:0])
	r.factbuf = factIDs
	if r.factRef == nil {
		r.factRef = make(map[intern.AtomID]int32, len(factIDs))
	}
	clear(r.factRef)
	for _, id := range factIDs {
		r.factRef[id]++
	}
	r.factTot = len(factIDs)
	r.skipped = skipped
	out.Skipped = skipped
	out.Latency.Convert = time.Since(t0)

	t0 = time.Now()
	gp, err := r.inst.GroundIncremental(factIDs)
	if err != nil {
		var lim *ground.ErrAtomLimit
		if errors.As(err, &lim) {
			// A from-scratch grounding of this window fails the same way.
			return nil, fmt.Errorf("grounding: %w", err)
		}
		// The incremental engine cannot handle this program after all;
		// disable it and fall back for good.
		r.incOff = true
		r.resetCarry()
		return r.processFullAt(window, start)
	}
	out.Latency.Ground = time.Since(t0)
	r.incLive = true
	return r.solveAndFilter(out, gp, start)
}

// processDelta applies a windower-reported delta to the maintained grounding.
func (r *R) processDelta(window []rdf.Triple, d *Delta) (*Output, error) {
	start := time.Now()
	out := &Output{}

	t0 := time.Now()
	addIDs, retIDs, skippedDelta := dfp.InternDelta(r.tab, d.Added, d.Retracted, r.arities, r.addBuf[:0], r.retBuf[:0])
	r.addBuf, r.retBuf = addIDs, retIDs
	addSet, retSet := r.addSet[:0], r.retSet[:0]
	for _, id := range retIDs {
		c := r.factRef[id]
		if c <= 0 {
			// The delta retracts a fact the window never held: the windower
			// and our bookkeeping disagree. Re-seed from the full window.
			return r.processSeedAt(window, start)
		}
		if c == 1 {
			delete(r.factRef, id)
			retSet = append(retSet, id)
		} else {
			r.factRef[id] = c - 1
		}
	}
	for _, id := range addIDs {
		c := r.factRef[id]
		r.factRef[id] = c + 1
		if c == 0 {
			addSet = append(addSet, id)
		}
	}
	r.addSet, r.retSet = addSet, retSet
	r.factTot += len(addIDs) - len(retIDs)
	r.skipped += skippedDelta
	if r.factTot+r.skipped != len(window) || r.factTot < 0 || r.skipped < 0 {
		return r.processSeedAt(window, start) // mis-advertised delta
	}
	out.Skipped = r.skipped
	out.Latency.Convert = time.Since(t0)
	return r.applyUpdate(out, window, addSet, retSet, start)
}

// processDiff derives the delta itself by diffing the window's interned fact
// multiset against the previous window's.
func (r *R) processDiff(window []rdf.Triple) (*Output, error) {
	start := time.Now()
	out := &Output{}

	t0 := time.Now()
	factIDs, skipped := dfp.InternFacts(r.tab, window, r.arities, r.factbuf[:0])
	r.factbuf = factIDs
	next := r.refScratch
	if next == nil {
		next = make(map[intern.AtomID]int32, len(factIDs))
	}
	clear(next)
	for _, id := range factIDs {
		next[id]++
	}
	addSet, retSet := r.addSet[:0], r.retSet[:0]
	for id := range next {
		if r.factRef[id] == 0 {
			addSet = append(addSet, id)
		}
	}
	for id := range r.factRef {
		if next[id] == 0 {
			retSet = append(retSet, id)
		}
	}
	r.addSet, r.retSet = addSet, retSet
	r.factRef, r.refScratch = next, r.factRef
	r.factTot = len(factIDs)
	r.skipped = skipped
	out.Skipped = skipped
	out.Latency.Convert = time.Since(t0)
	return r.applyUpdate(out, window, addSet, retSet, start)
}

// applyUpdate runs the grounder's Update with the fact-level delta, falling
// back to a full re-seed when the delta is too large to pay off or the
// update fails.
func (r *R) applyUpdate(out *Output, window []rdf.Triple, addSet, retSet []intern.AtomID, start time.Time) (*Output, error) {
	if 2*(len(addSet)+len(retSet)) >= r.factTot {
		// Non-overlapping or nearly disjoint windows: delta joins would
		// do more work than grounding from scratch.
		return r.processSeedAt(window, start)
	}
	t0 := time.Now()
	gp, err := r.inst.Update(addSet, retSet)
	if err != nil {
		var lim *ground.ErrAtomLimit
		if !errors.As(err, &lim) && !errors.Is(err, ground.ErrNotIncremental) {
			// Accounting violation: distrust the incremental engine for
			// this reasoner from now on — no point seeding state that can
			// never be consumed.
			r.incOff = true
			r.incLive = false
			r.resetCarry()
			return r.processFullAt(window, start)
		}
		return r.processSeedAt(window, start)
	}
	out.Latency.Ground = time.Since(t0)
	out.Incremental = true
	return r.solveAndFilter(out, gp, start)
}

// solveAndFilter is the shared tail of every processing path.
func (r *R) solveAndFilter(out *Output, gp *ground.Program, start time.Time) (*Output, error) {
	out.GroundStats = gp.Stats
	t0 := time.Now()
	res, err := solve.SolveCarry(gp, r.cfg.SolveOpts, r.carry)
	if err != nil {
		return nil, fmt.Errorf("solving: %w", err)
	}
	out.Latency.Solve = time.Since(t0)
	out.SolveStats = res.Stats

	out.Answers = make([]*solve.AnswerSet, len(res.Models))
	for i, m := range res.Models {
		out.Answers[i] = r.filter(m)
	}
	// Budget-triggered table rotation is part of the window's cost, so it
	// lands inside Total/CriticalPath.
	r.maybeRotate(out)
	out.Latency.Total = time.Since(start)
	out.Latency.CriticalPath = out.Latency.Total
	return out, nil
}

// filter projects an answer set to the configured output predicates, or to
// all derived (non-input) atoms by default. The projection runs on interned
// IDs; no atom is materialized.
func (r *R) filter(m *solve.AnswerSet) *solve.AnswerSet {
	keep := func(id intern.AtomID) bool {
		sym := r.tab.PredNameSym(r.tab.AtomPred(id))
		if r.outputs != nil {
			return r.outputs[sym]
		}
		return !r.inpre[sym]
	}
	if r.outputs == nil && r.cfg.IncludeInputFacts {
		return m
	}
	ids := m.IDs()
	kept := make([]intern.AtomID, 0, len(ids))
	for _, id := range ids {
		if keep(id) {
			kept = append(kept, id)
		}
	}
	return solve.FromIDs(r.tab, kept)
}

// PR is the parallel reasoner of the extended StreamRule framework: a
// partitioning handler, k copies of the reasoner, and a combining handler.
type PR struct {
	part      Partitioner
	reasoners []*R
	// MaxCombinations caps the cross-product of per-partition answer sets
	// combined by the combining handler (0 means DefaultMaxCombinations).
	MaxCombinations int
	// Sequential runs the partition reasoners one after another instead of
	// in parallel goroutines. NewPR enables it automatically when the host
	// has fewer available cores than partitions: interleaved goroutines on
	// an oversubscribed host would inflate every per-partition measurement,
	// whereas sequential execution yields honest isolated timings from
	// which Latency.CriticalPath reconstructs the k-core parallel latency.
	Sequential bool

	// budget is the PR-level MemoryBudget: all partition reasoners share one
	// interning table, so rotation must be coordinated here, after every
	// partition has quiesced (memory.go). The per-partition reasoners run
	// with budget 0. budgetBytes is the byte-based counterpart
	// (Config.MemoryBudgetBytes).
	budget      int
	budgetBytes int64
	liveBuf     []intern.AtomID
}

// DefaultMaxCombinations bounds the answer-set cross product.
const DefaultMaxCombinations = 64

// NumPartitions returns the number of reasoner copies (= partitions).
func (pr *PR) NumPartitions() int { return len(pr.reasoners) }

// NewPR builds a parallel reasoner with one reasoner copy per partition.
func NewPR(cfg Config, part Partitioner) (*PR, error) {
	if part == nil {
		return nil, fmt.Errorf("reasoner: nil partitioner")
	}
	n := part.NumPartitions()
	if n < 1 {
		return nil, fmt.Errorf("reasoner: partitioner yields %d partitions", n)
	}
	pr := &PR{part: part, Sequential: runtime.GOMAXPROCS(0) < n, budget: cfg.MemoryBudget, budgetBytes: cfg.MemoryBudgetBytes}
	if cfg.budgeted() {
		if cfg.GroundOpts.Intern == nil {
			cfg.GroundOpts.Intern = intern.NewTable()
		}
		// Partition reasoners share the table; rotation is coordinated at
		// the PR level between windows, never by a single partition.
		cfg.MemoryBudget = 0
		cfg.MemoryBudgetBytes = 0
	}
	for i := 0; i < n; i++ {
		r, err := NewR(cfg)
		if err != nil {
			return nil, err
		}
		pr.reasoners = append(pr.reasoners, r)
	}
	return pr, nil
}

// Process partitions the window, reasons over the partitions in parallel,
// and combines the per-partition answer sets. Each partition is grounded
// from scratch.
func (pr *PR) Process(window []rdf.Triple) (*Output, error) {
	return pr.process(window, (*R).Process)
}

// ProcessDelta is the incremental Process for overlapping windows: each
// partition reasoner maintains its grounding across windows, deriving its
// own partition-level delta by diffing fact multisets (partition routing may
// duplicate or reshuffle items, so the stream-level delta cannot be routed
// directly). A nil delta (first emission, tumbling window) degrades to the
// from-scratch Process.
func (pr *PR) ProcessDelta(window []rdf.Triple, d *Delta) (*Output, error) {
	if d == nil {
		return pr.Process(window)
	}
	return pr.process(window, (*R).ProcessAuto)
}

func (pr *PR) process(window []rdf.Triple, processPart func(*R, []rdf.Triple) (*Output, error)) (*Output, error) {
	start := time.Now()
	pr.beginWindow()
	out := &Output{}

	t0 := time.Now()
	parts, skipped := pr.part.Partition(window)
	out.Skipped = skipped
	out.Latency.Partition = time.Since(t0)
	for _, p := range parts {
		out.PartitionSizes = append(out.PartitionSizes, len(p))
		out.RoutedItems += len(p)
	}

	results := make([]*Output, len(parts))
	errs := make([]error, len(parts))
	if pr.Sequential {
		for i := range parts {
			results[i], errs[i] = processPart(pr.reasoners[i], parts[i])
		}
	} else {
		var wg sync.WaitGroup
		for i := range parts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = processPart(pr.reasoners[i], parts[i])
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out.Incremental = len(results) > 0
	// The aggregate is on the fast path only when every partition was.
	out.SolveStats.FastPath = len(results) > 0
	var maxTotal time.Duration
	for _, res := range results {
		if !res.Incremental {
			out.Incremental = false
		}
		if !res.SolveStats.FastPath {
			out.SolveStats.FastPath = false
		}
		if res.Latency.Total > maxTotal {
			maxTotal = res.Latency.Total
		}
		if res.Latency.Convert > out.Latency.Convert {
			out.Latency.Convert = res.Latency.Convert
		}
		if res.Latency.Ground > out.Latency.Ground {
			out.Latency.Ground = res.Latency.Ground
		}
		if res.Latency.Solve > out.Latency.Solve {
			out.Latency.Solve = res.Latency.Solve
		}
		out.GroundStats.Atoms += res.GroundStats.Atoms
		out.GroundStats.Rules += res.GroundStats.Rules
		out.GroundStats.CertainFacts += res.GroundStats.CertainFacts
		out.GroundStats.Iterations += res.GroundStats.Iterations
		out.SolveStats.Add(res.SolveStats)
	}

	t0 = time.Now()
	max := pr.MaxCombinations
	if max <= 0 {
		max = DefaultMaxCombinations
	}
	perPartition := make([][]*solve.AnswerSet, len(results))
	for i, res := range results {
		perPartition[i] = res.Answers
	}
	out.Answers = Combine(perPartition, max)
	out.Latency.Combine = time.Since(t0)

	// Coordinated table rotation: all partitions have quiesced, so the
	// shared table can be compacted and every reasoner remapped. Charged to
	// Combine's side of the critical path (it runs on the combining host).
	t0 = time.Now()
	pr.maybeRotate(out)
	rotate := time.Since(t0)

	out.Latency.Total = time.Since(start)
	out.Latency.CriticalPath = out.Latency.Partition + maxTotal + out.Latency.Combine + rotate
	return out, nil
}

// Combine implements the combining handler (§III):
//
//	AnsP(W) = { ⋃ᵢ ansᵢ : ansᵢ ∈ AnsP(Wᵢ) }
//
// the cross product of per-partition answer sets, each combination unioned.
// If any partition has no answer set the combined result is empty, per the
// formula. The number of combinations is capped at max; duplicates are
// removed.
func Combine(perPartition [][]*solve.AnswerSet, max int) []*solve.AnswerSet {
	for _, answers := range perPartition {
		if len(answers) == 0 {
			return nil
		}
	}
	if len(perPartition) == 0 {
		return nil
	}
	// Seed the cross product on the partitions' own interning table (they
	// all share one), so unions run on the ID fast path and the combined
	// sets stay inside the table the reasoner owns — essential when that
	// table is budgeted and rotates.
	combos := []*solve.AnswerSet{solve.FromIDs(perPartition[0][0].Table(), nil)}
	for _, answers := range perPartition {
		var next []*solve.AnswerSet
		for _, c := range combos {
			for _, a := range answers {
				next = append(next, c.Union(a))
				if len(next) >= max {
					break
				}
			}
			if len(next) >= max {
				break
			}
		}
		combos = next
	}
	// Deduplicate by a compact binary signature over the sorted interned
	// IDs — no atom is rendered to text. The table pointer is part of the
	// key so IDs from different interning tables are never conflated.
	type sigKey struct {
		tab *intern.Table
		sig string
	}
	seen := make(map[sigKey]bool, len(combos))
	out := combos[:0]
	var buf []byte
	for _, c := range combos {
		buf = buf[:0]
		for _, id := range c.IDs() {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
		k := sigKey{tab: c.Table(), sig: string(buf)}
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}
