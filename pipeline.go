package streamrule

import (
	"context"
	"fmt"
	"time"

	"streamrule/internal/stream"
)

// Reasoner is the common surface of Engine and ParallelEngine.
type Reasoner interface {
	Reason(window []Triple) (*Output, error)
}

// DeltaReasoner is implemented by reasoners that can maintain their
// grounding incrementally across overlapping windows (Engine and
// ParallelEngine both do). The pipeline feeds windower-reported deltas to a
// DeltaReasoner automatically.
type DeltaReasoner interface {
	Reasoner
	ReasonDelta(window []Triple, d *Delta) (*Output, error)
}

// PipelinedReasoner is implemented by reasoners that can hold several
// windows in flight (DistributedEngine with WithMaxInFlight > 1): Submit
// enqueues a window, Collect yields results strictly in submission order,
// and InFlight reports the queue depth. The pipeline drives such a reasoner
// in submit-ahead mode automatically, overlapping window n+1's shipping
// with window n's remote compute.
type PipelinedReasoner interface {
	DeltaReasoner
	Submit(window []Triple, d *Delta) error
	Collect() (*Output, error)
	InFlight() int
	PipelineDepth() int
}

// Filter selects (and may rewrite) the triples forwarded to the reasoning
// layer — the stand-in for the stream query processor of StreamRule.
type Filter = stream.Filter

// PredicateFilter keeps only triples whose predicate is one of preds.
func PredicateFilter(preds ...string) Filter { return stream.PredicateFilter(preds) }

// Pipeline wires a triple source through a filter and a window operator into
// a reasoner, delivering one Output per completed window — the run-time half
// of the extended StreamRule architecture (Figure 6).
type Pipeline struct {
	// Source provides the triples. Required.
	Source []Triple
	// Rate paces the source in triples/second (0 = as fast as possible).
	Rate int
	// Filter is optional; nil forwards everything.
	Filter Filter
	// WindowSize is the tuple-based window size (required, > 0).
	WindowSize int
	// WindowStep, when set to less than WindowSize, makes the count window
	// sliding: a window of the last WindowSize items every WindowStep items.
	WindowStep int
	// WindowSpan, when set, switches to time-based windows of this span and
	// ignores WindowSize.
	WindowSpan time.Duration
	// WindowSlide, when set to less than WindowSpan, makes the time window
	// sliding with this step.
	WindowSlide time.Duration
	// Reasoner processes each window. Required.
	Reasoner Reasoner
}

// memoryStatser is satisfied by Engine and ParallelEngine (and any reasoner
// that surfaces memory metrics).
type memoryStatser interface {
	Stats() MemoryStats
}

// MemoryStats reports the reasoner's memory metrics when it exposes them
// (engines built with WithMemoryBudget always do). ok is false for
// reasoners without a Stats hook. For a DistributedEngine the snapshot's
// Transport field additionally carries the wire metrics.
func (p *Pipeline) MemoryStats() (stats MemoryStats, ok bool) {
	if m, isStatser := p.Reasoner.(memoryStatser); isStatser {
		return m.Stats(), true
	}
	return MemoryStats{}, false
}

// transportStatser is satisfied by DistributedEngine (and any reasoner that
// surfaces wire metrics).
type transportStatser interface {
	TransportStats() TransportStats
}

// TransportStats reports the reasoner's wire metrics when it is a
// distributed engine. ok is false for in-process reasoners.
func (p *Pipeline) TransportStats() (stats TransportStats, ok bool) {
	if m, isStatser := p.Reasoner.(transportStatser); isStatser {
		return m.TransportStats(), true
	}
	return TransportStats{}, false
}

// Run executes the pipeline until the source is exhausted or the context is
// cancelled, calling handle with each window's triples and reasoning output.
func (p *Pipeline) Run(ctx context.Context, handle func(window []Triple, out *Output) error) error {
	if p.Reasoner == nil {
		return fmt.Errorf("streamrule: pipeline needs a Reasoner")
	}
	var w stream.Windower
	switch {
	case p.WindowSpan > 0 && p.WindowSlide > 0 && p.WindowSlide < p.WindowSpan:
		w = &stream.SlidingTimeWindow{Span: p.WindowSpan, Step: p.WindowSlide}
	case p.WindowSpan > 0:
		w = &stream.TimeWindow{Span: p.WindowSpan}
	case p.WindowSize > 0 && p.WindowStep > 0 && p.WindowStep < p.WindowSize:
		w = &stream.SlidingCountWindow{Size: p.WindowSize, Step: p.WindowStep}
	case p.WindowSize > 0:
		w = &stream.CountWindow{Size: p.WindowSize}
	default:
		return fmt.Errorf("streamrule: pipeline needs WindowSize or WindowSpan")
	}
	src := &stream.SliceSource{Triples: p.Source, Rate: p.Rate}
	if pr, ok := p.Reasoner.(PipelinedReasoner); ok && pr.PipelineDepth() > 1 {
		return p.runPipelined(ctx, src, w, pr, handle)
	}
	dr, _ := p.Reasoner.(DeltaReasoner)
	return stream.WindowsDelta(ctx, src, p.Filter, w, func(wd stream.WindowDelta) error {
		var out *Output
		var err error
		if dr != nil {
			var d *Delta
			if wd.Incremental {
				d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
			}
			out, err = dr.ReasonDelta(wd.Window, d)
		} else {
			out, err = p.Reasoner.Reason(wd.Window)
		}
		if err != nil {
			return err
		}
		return handle(wd.Window, out)
	})
}

// runPipelined drives a PipelinedReasoner in submit-ahead mode: each
// emitted window is submitted immediately, and a result is collected (and
// handled) only once the pipeline is full — so up to PipelineDepth windows
// overlap. Windowers emit fresh window copies, so queuing them is safe. The
// tail of the stream is drained at the end; handle still observes every
// window in order. On any error the remaining in-flight legs are drained
// (their outputs discarded) before returning, so the reasoner is left with
// an empty pipeline and can be reused.
func (p *Pipeline) runPipelined(ctx context.Context, src stream.Source, w stream.Windower, pr PipelinedReasoner, handle func(window []Triple, out *Output) error) error {
	depth := pr.PipelineDepth()
	var queued [][]Triple
	collect := func() error {
		out, err := pr.Collect()
		if err != nil {
			return err
		}
		win := queued[0]
		queued = queued[1:]
		return handle(win, out)
	}
	err := stream.WindowsDelta(ctx, src, p.Filter, w, func(wd stream.WindowDelta) error {
		var d *Delta
		if wd.Incremental {
			d = &Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		if err := pr.Submit(wd.Window, d); err != nil {
			return err
		}
		queued = append(queued, wd.Window)
		if len(queued) >= depth {
			return collect()
		}
		return nil
	})
	if err == nil {
		for len(queued) > 0 {
			if err = collect(); err != nil {
				break
			}
		}
	}
	if err != nil {
		// A windower, Submit, Collect, or handle error abandons the windows
		// already in flight; leaving them undelivered desyncs the reasoner's
		// sessions on its next Submit. Retire each abandoned leg — Collect
		// always retires exactly one, even when it reports an error, so the
		// loop is bounded by the current in-flight count.
		for n := pr.InFlight(); n > 0; n-- {
			_, _ = pr.Collect()
		}
		return err
	}
	return nil
}
