package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFigureCSV(t *testing.T) {
	code, out, _ := runCLI(t, "-figure", "7", "-sizes", "400", "-reps", "1")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "Figure 7") {
		t.Errorf("out = %q", out)
	}
	if !strings.Contains(out, "window_size,R,PR_Dep,PR_Ran_k2,PR_Ran_k3,PR_Ran_k4,PR_Ran_k5") {
		t.Errorf("header missing: %q", out)
	}
	if !strings.Contains(out, "400,") {
		t.Errorf("row missing: %q", out)
	}
}

func TestFigure9IncludesDupShare(t *testing.T) {
	code, out, _ := runCLI(t, "-figure", "9", "-sizes", "400", "-reps", "1")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "duplication share") {
		t.Errorf("out = %q", out)
	}
}

func TestMarkdownOutput(t *testing.T) {
	code, out, _ := runCLI(t, "-figure", "8", "-sizes", "400", "-reps", "1", "-markdown")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "### Figure 8") || !strings.Contains(out, "|---|") {
		t.Errorf("out = %q", out)
	}
}

func TestThroughputMode(t *testing.T) {
	code, out, _ := runCLI(t, "-throughput", "-sizes", "400", "-reps", "1", "-atom", "2")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "window_size,R,PR_Dep,PR_Atom_m2") {
		t.Errorf("out = %q", out)
	}
}

func TestNoDupAblationFlag(t *testing.T) {
	code, out, _ := runCLI(t, "-figure", "10", "-sizes", "400", "-reps", "1", "-nodup")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "Figure 10") {
		t.Errorf("out = %q", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Errorf("no flags: code = %d", code)
	}
	if code, _, _ := runCLI(t, "-figure", "3"); code != 2 {
		t.Errorf("unknown figure: code = %d", code)
	}
	if code, _, _ := runCLI(t, "-figure", "7", "-sizes", "abc"); code != 2 {
		t.Errorf("bad sizes: code = %d", code)
	}
	if code, _, _ := runCLI(t, "-figure", "7", "-sizes", "-5"); code != 2 {
		t.Errorf("negative size: code = %d", code)
	}
}
