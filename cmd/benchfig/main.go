// Command benchfig regenerates the paper's evaluation figures (7-10) as CSV
// series: reasoning latency and answer accuracy over window sizes 5k-40k for
// R, PR_Dep, and PR_Ran_k (k=2..5).
//
// Usage:
//
//	benchfig -figure 7            # latency, program P
//	benchfig -figure 8            # accuracy, program P
//	benchfig -figure 9            # latency, program P'
//	benchfig -figure 10           # accuracy, program P'
//	benchfig -figure 7 -sizes 5000,10000 -reps 5 -seed 3
//	benchfig -all                 # all four figures, markdown tables
//	benchfig -throughput          # derived: max sustainable stream rate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"streamrule/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchfig", flag.ContinueOnError)
	fs.SetOutput(stderr)
	figure := fs.Int("figure", 0, "paper figure to regenerate (7, 8, 9, or 10)")
	all := fs.Bool("all", false, "run all four figures and print markdown tables")
	throughput := fs.Bool("throughput", false, "derived experiment: maximum sustainable stream rate (items/s)")
	atomFanout := fs.Int("atom", 4, "atom-level fan-out for the throughput experiment (0 disables)")
	sizes := fs.String("sizes", "", "comma-separated window sizes (default 5000..40000 step 5000)")
	reps := fs.Int("reps", 3, "windows averaged per point")
	seed := fs.Int64("seed", 1, "workload seed")
	resolution := fs.Float64("resolution", 1.0, "Louvain resolution for the decomposing process")
	noDup := fs.Bool("nodup", false, "ablation: strip duplicated predicates from the plan")
	markdown := fs.Bool("markdown", false, "emit a markdown table instead of CSV")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *throughput {
		cfg := bench.ThroughputConfig{
			ProgramSrc:  bench.ProgramP,
			Seed:        *seed,
			Repetitions: *reps,
			AtomFanout:  *atomFanout,
		}
		if *sizes != "" {
			var err error
			cfg.Sizes, err = parseSizes(*sizes)
			if err != nil {
				fmt.Fprintln(stderr, "benchfig:", err)
				return 2
			}
		}
		res, err := bench.RunThroughput(cfg)
		if err != nil {
			fmt.Fprintln(stderr, "benchfig:", err)
			return 1
		}
		fmt.Fprintln(stdout, "# maximum sustainable stream rate (items/second)")
		fmt.Fprint(stdout, res.CSV())
		return 0
	}
	if *all {
		if err := runAll(stdout, *reps, *seed); err != nil {
			fmt.Fprintln(stderr, "benchfig:", err)
			return 1
		}
		return 0
	}
	if *figure == 0 {
		fmt.Fprintln(stderr, "benchfig: -figure, -all, or -throughput is required")
		fs.Usage()
		return 2
	}
	cfg, err := bench.Figure(*figure)
	if err != nil {
		fmt.Fprintln(stderr, "benchfig:", err)
		return 2
	}
	cfg.Repetitions = *reps
	cfg.Seed = *seed
	cfg.Resolution = *resolution
	cfg.NoDuplication = *noDup
	if *sizes != "" {
		cfg.Sizes, err = parseSizes(*sizes)
		if err != nil {
			fmt.Fprintln(stderr, "benchfig:", err)
			return 2
		}
	}

	res, err := bench.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "benchfig:", err)
		return 1
	}
	metric, title := metricFor(*figure)
	if *markdown {
		fmt.Fprint(stdout, res.Markdown(metric, title))
		return 0
	}
	fmt.Fprintf(stdout, "# %s\n", title)
	fmt.Fprint(stdout, res.CSV(metric))
	if *figure == 9 || *figure == 10 {
		fmt.Fprintln(stdout, "# duplication share (fraction of routed items that are duplicated copies)")
		fmt.Fprint(stdout, res.CSV("dup_share"))
	}
	return 0
}

func metricFor(figure int) (metric, title string) {
	switch figure {
	case 7:
		return "latency_ms", "Figure 7: reasoning latency (ms, critical path), program P"
	case 8:
		return "accuracy", "Figure 8: accuracy, program P"
	case 9:
		return "latency_ms", "Figure 9: reasoning latency (ms, critical path), program P'"
	default:
		return "accuracy", "Figure 10: accuracy, program P'"
	}
}

func runAll(stdout io.Writer, reps int, seed int64) error {
	for _, figure := range []int{7, 8, 9, 10} {
		cfg, err := bench.Figure(figure)
		if err != nil {
			return err
		}
		cfg.Repetitions = reps
		cfg.Seed = seed
		res, err := bench.Run(cfg)
		if err != nil {
			return err
		}
		metric, title := metricFor(figure)
		fmt.Fprintln(stdout, res.Markdown(metric, title))
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
