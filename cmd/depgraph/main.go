// Command depgraph runs the design-time input dependency analysis on a
// program and prints the extended dependency graph, the input dependency
// graph, and the partitioning plan — the artifacts of Figures 2-5.
//
// Usage:
//
//	depgraph -inpre average_speed,car_number,... program.lp
//	depgraph -inpre a,b -dot extended program.lp   # Graphviz output
//	depgraph -inpre a,b -dot input program.lp
//	depgraph -paper P        # built-in program P (Listing 1)
//	depgraph -paper Pprime   # P + rule r7
//	depgraph -paper P -atoms # atom-level key analysis (§VI future work)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"streamrule/internal/asp/parser"
	"streamrule/internal/atomdep"
	"streamrule/internal/bench"
	"streamrule/internal/core"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("depgraph", flag.ContinueOnError)
	fs.SetOutput(stderr)
	inpre := fs.String("inpre", "", "comma-separated input predicate names")
	dot := fs.String("dot", "", "emit Graphviz for one graph: 'extended' or 'input'")
	resolution := fs.Float64("resolution", 1.0, "Louvain resolution for the decomposing process")
	paper := fs.String("paper", "", "use a built-in paper program: P or Pprime")
	atoms := fs.Bool("atoms", false, "also run the atom-level key analysis per community")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var src string
	switch {
	case *paper == "P":
		src = bench.ProgramP
	case *paper == "Pprime":
		src = bench.ProgramPPrime
	case fs.NArg() == 1:
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return fail(stderr, err)
		}
		src = string(data)
	default:
		fmt.Fprintln(stderr, "usage: depgraph [-inpre p1,p2,...] <program.lp>  (or -paper P|Pprime)")
		fs.Usage()
		return 2
	}

	preds := splitList(*inpre)
	if *paper != "" && len(preds) == 0 {
		preds = bench.Inpre
	}
	if len(preds) == 0 {
		return fail(stderr, fmt.Errorf("-inpre is required for user programs"))
	}

	prog, err := parser.Parse(src)
	if err != nil {
		return fail(stderr, err)
	}
	a, err := core.Analyze(prog, preds, *resolution)
	if err != nil {
		return fail(stderr, err)
	}

	switch *dot {
	case "extended":
		fmt.Fprint(stdout, a.Extended.DOT())
		return 0
	case "input":
		fmt.Fprint(stdout, a.Input.DOT())
		return 0
	case "":
	default:
		return fail(stderr, fmt.Errorf("unknown -dot target %q", *dot))
	}

	fmt.Fprintln(stdout, "== extended dependency graph (Definition 1) ==")
	fmt.Fprintln(stdout, "E1 (undirected body co-occurrence, self-loop = negated literal):")
	for _, e := range a.Extended.E1.Edges() {
		fmt.Fprintf(stdout, "  (%s, %s)\n", e[0], e[1])
	}
	fmt.Fprintln(stdout, "E2 (directed body -> head):")
	for _, from := range a.Extended.E2.Nodes() {
		for _, to := range a.Extended.E2.Succ(from) {
			fmt.Fprintf(stdout, "  %s -> %s\n", from, to)
		}
	}

	fmt.Fprintln(stdout, "\n== input dependency graph (Definition 2) ==")
	for _, e := range a.Input.G.Edges() {
		fmt.Fprintf(stdout, "  (%s, %s)\n", e[0], e[1])
	}
	comps := a.Input.G.ConnectedComponents()
	fmt.Fprintf(stdout, "connected: %v (%d component(s))\n", a.Input.G.IsConnected(), len(comps))

	fmt.Fprintln(stdout, "\n== partitioning plan (decomposing process, §II-B) ==")
	fmt.Fprint(stdout, a.Plan)
	if a.Plan.Connected {
		fmt.Fprintf(stdout, "modularity: %.4f (resolution %.2f)\n", a.Plan.Modularity, *resolution)
	}

	if *atoms {
		fmt.Fprintln(stdout, "\n== atom-level key analysis (§VI future work) ==")
		an := atomdep.Analyze(prog, a.Plan)
		for _, c := range an.Components {
			if !c.Splittable {
				fmt.Fprintf(stdout, "  C%d: not splittable (%s)\n", c.Community, c.Reason)
				continue
			}
			var pairs []string
			for pred, pos := range c.Key {
				pairs = append(pairs, fmt.Sprintf("%s@%d", pred, pos))
			}
			sort.Strings(pairs)
			fmt.Fprintf(stdout, "  C%d: splittable, keys: %s\n", c.Community, strings.Join(pairs, ", "))
		}
	}
	return 0
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "depgraph:", err)
	return 1
}
