package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestPaperP(t *testing.T) {
	code, out, _ := runCLI(t, "-paper", "P")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	for _, want := range []string{
		"(traffic_light, traffic_light)", // E1 self-loop
		"average_speed -> very_slow_speed",
		"connected: false (2 component(s))",
		"partitions: 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestPaperPPrimeDuplication(t *testing.T) {
	code, out, _ := runCLI(t, "-paper", "Pprime")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "duplicated: car_number") {
		t.Errorf("out = %q", out)
	}
	if !strings.Contains(out, "modularity:") {
		t.Error("modularity missing for connected graph")
	}
}

func TestDotOutputs(t *testing.T) {
	code, out, _ := runCLI(t, "-paper", "P", "-dot", "extended")
	if code != 0 || !strings.HasPrefix(out, "digraph extended {") {
		t.Errorf("code = %d, out = %q", code, out)
	}
	code, out, _ = runCLI(t, "-paper", "P", "-dot", "input")
	if code != 0 || !strings.HasPrefix(out, "graph input {") {
		t.Errorf("code = %d, out = %q", code, out)
	}
	if code, _, _ := runCLI(t, "-paper", "P", "-dot", "bogus"); code != 1 {
		t.Errorf("bogus dot target: code = %d", code)
	}
}

func TestAtomAnalysis(t *testing.T) {
	code, out, _ := runCLI(t, "-paper", "P", "-atoms")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "atom-level key analysis") {
		t.Errorf("out = %q", out)
	}
	if !strings.Contains(out, "splittable, keys:") {
		t.Errorf("P components should be splittable: %q", out)
	}
	code, out, _ = runCLI(t, "-paper", "Pprime", "-atoms")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "not splittable") {
		t.Errorf("P' car community should not be splittable: %q", out)
	}
}

func TestUserProgramFile(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "prog.lp")
	if err := os.WriteFile(file, []byte("x :- a(V), b(V)."), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCLI(t, "-inpre", "a,b", file)
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "(a, b)") {
		t.Errorf("out = %q", out)
	}
	// Missing -inpre for user programs.
	if code, _, _ := runCLI(t, file); code != 1 {
		t.Errorf("missing inpre: code = %d", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Errorf("no args: code = %d", code)
	}
	// A bad resolution only matters when the graph is connected and Louvain
	// actually runs — i.e. for P', not for P.
	if code, _, _ := runCLI(t, "-paper", "Pprime", "-resolution", "-2"); code != 1 {
		t.Errorf("bad resolution: code = %d", code)
	}
	if code, _, _ := runCLI(t, "no-such.lp"); code != 1 {
		t.Errorf("missing file: code = %d", code)
	}
}
