package main

import (
	"bytes"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"testing"

	"streamrule"
	"streamrule/internal/transport/tlstest"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestSyntheticPipelinePR(t *testing.T) {
	code, out, errOut := runCLI(t, "-paper", "P", "-window", "1000", "-windows", "2")
	if code != 0 {
		t.Fatalf("code = %d, stderr = %q", code, errOut)
	}
	if !strings.Contains(out, "partitions: 2") {
		t.Errorf("plan missing: %q", out)
	}
	if strings.Count(out, "window ") != 2 {
		t.Errorf("expected 2 windows: %q", out)
	}
	if !strings.Contains(out, "critical-path=") {
		t.Errorf("latency breakdown missing: %q", out)
	}
}

func TestModeR(t *testing.T) {
	code, out, _ := runCLI(t, "-paper", "P", "-mode", "R", "-window", "800", "-windows", "1")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if strings.Contains(out, "partitioning plan") {
		t.Error("mode R must not print a plan")
	}
}

// The residual paper program must engage the solver search on every window
// (no fast path), print the solver work profile, and produce identical
// answers under the -naive-solver ablation.
func TestResidualProgramSolverStats(t *testing.T) {
	code, out, errOut := runCLI(t, "-paper", "Presidual", "-mode", "R", "-window", "1000", "-windows", "2")
	if code != 0 {
		t.Fatalf("code = %d, stderr = %q", code, errOut)
	}
	if !strings.Contains(out, "solver: residual-windows=2/2") {
		t.Errorf("solver stats line missing or wrong: %q", out)
	}
	if !strings.Contains(out, "rule-visits=") || !strings.Contains(out, "source-repairs=") {
		t.Errorf("solver work profile missing: %q", out)
	}
	// Stratified windows ride the fast path — even through PR's aggregated
	// stats — and must not be reported as residual.
	code, stratOut, _ := runCLI(t, "-paper", "P", "-window", "1000", "-windows", "2")
	if code != 0 {
		t.Fatalf("stratified: code = %d", code)
	}
	if strings.Contains(stratOut, "solver: residual-windows=") {
		t.Errorf("stratified program reported residual windows: %q", stratOut)
	}
	code, naiveOut, _ := runCLI(t, "-paper", "Presidual", "-mode", "R", "-window", "1000", "-windows", "2", "-naive-solver")
	if code != 0 {
		t.Fatalf("naive: code = %d", code)
	}
	if !strings.Contains(naiveOut, "queue-pushes=0 source-repairs=0") {
		t.Errorf("naive ablation still used the counter engine: %q", naiveOut)
	}
	// Same stream, same windows: the answer-set sizes must match as sorted
	// multisets (the engines may enumerate the same answers in a different
	// order, so the "answer N:" indices are stripped before comparing).
	filter := func(s string) []string {
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			line = strings.TrimSpace(line)
			if strings.HasPrefix(line, "answer ") {
				_, size, ok := strings.Cut(line, ": ")
				if !ok {
					t.Fatalf("malformed answer line %q", line)
				}
				kept = append(kept, size)
			}
		}
		slices.Sort(kept)
		return kept
	}
	a, b := filter(out), filter(naiveOut)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("answer summaries differ in count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("answer summary %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestAtomFanout(t *testing.T) {
	code, out, _ := runCLI(t, "-paper", "P", "-atom", "3", "-window", "800", "-windows", "1")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "partitions: 6") { // 2 communities x 3 buckets
		t.Errorf("out = %q", out)
	}
}

func TestStreamFromFile(t *testing.T) {
	dir := t.TempDir()
	progFile := filepath.Join(dir, "rules.lp")
	streamFile := filepath.Join(dir, "stream.nt")
	if err := os.WriteFile(progFile, []byte("hot(X) :- temp(X, V), V > 30."), 0o644); err != nil {
		t.Fatal(err)
	}
	stream := `
room1 temp 35 .
room2 temp 20 .
room3 temp 40 .
`
	if err := os.WriteFile(streamFile, []byte(strings.TrimSpace(stream)), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t,
		"-program", progFile, "-inpre", "temp",
		"-stream", streamFile, "-window", "10", "-mode", "R", "-v")
	if code != 0 {
		t.Fatalf("code = %d, stderr = %q", code, errOut)
	}
	if !strings.Contains(out, "hot(room1)") || !strings.Contains(out, "hot(room3)") {
		t.Errorf("out = %q", out)
	}
	if strings.Contains(out, "hot(room2)") {
		t.Errorf("room2 is not hot: %q", out)
	}
}

func TestVerboseVsSummary(t *testing.T) {
	code, out, _ := runCLI(t, "-paper", "P", "-window", "500", "-windows", "1")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "atoms") {
		t.Errorf("summary missing: %q", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Errorf("no args: code = %d", code)
	}
	if code, _, _ := runCLI(t, "-paper", "P", "-mode", "XX"); code != 1 {
		t.Errorf("bad mode: code = %d", code)
	}
	if code, _, _ := runCLI(t, "-program", "missing.lp", "-inpre", "a"); code != 1 {
		t.Errorf("missing program: code = %d", code)
	}
	dir := t.TempDir()
	progFile := filepath.Join(dir, "p.lp")
	os.WriteFile(progFile, []byte("p :- q(X)."), 0o644)
	if code, _, _ := runCLI(t, "-program", progFile); code != 1 {
		t.Errorf("missing inpre: code = %d", code)
	}
}

// TestDistributedLoopback is the end-to-end loopback integration: two
// in-process workers plus the CLI coordinator on localhost, whole pipeline,
// comparing the distributed run's answers against an in-process PR run on
// the identical deterministic stream.
func TestDistributedLoopback(t *testing.T) {
	w1, err := streamrule.NewWorkerServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w1.Serve()
	defer w1.Close()
	w2, err := streamrule.NewWorkerServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w2.Serve()
	defer w2.Close()

	args := []string{"-paper", "P", "-window", "1000", "-windows", "2", "-step", "500", "-seed", "7", "-v"}
	code, dOut, dErr := runCLI(t, append(args, "-workers", w1.Addr()+","+w2.Addr())...)
	if code != 0 {
		t.Fatalf("distributed run: code = %d, stderr = %q", code, dErr)
	}
	if !strings.Contains(dOut, "over 2 worker(s)") {
		t.Errorf("worker count missing: %q", dOut)
	}
	if !strings.Contains(dOut, "transport:") || !strings.Contains(dOut, "dict-hit=") {
		t.Errorf("transport stats missing: %q", dOut)
	}
	if strings.Contains(dOut, "remote=0 ") {
		t.Errorf("no window was served remotely: %q", dOut)
	}

	code, lOut, lErr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("local run: code = %d, stderr = %q", code, lErr)
	}
	if got, want := answerLines(dOut), answerLines(lOut); !slices.Equal(got, want) {
		t.Errorf("distributed answers diverge from local PR\ndistributed: %v\nlocal:       %v", got, want)
	}
}

// TestDistributedLoopbackTLS runs the coordinator CLI against a mutual-TLS
// worker: certs loaded through the -tls-* flags, answers identical to the
// local run.
func TestDistributedLoopbackTLS(t *testing.T) {
	mat, err := tlstest.New()
	if err != nil {
		t.Fatal(err)
	}
	w, err := streamrule.NewWorkerServerTLS("127.0.0.1:0", mat.ServerTLS)
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve()
	defer w.Close()

	dir := t.TempDir()
	write := func(name string, pem []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, pem, 0o600); err != nil {
			t.Fatal(err)
		}
		return p
	}
	ca := write("ca.pem", mat.CAPEM)
	cert := write("client-cert.pem", mat.ClientCertPEM)
	key := write("client-key.pem", mat.ClientKeyPEM)

	args := []string{"-paper", "P", "-window", "800", "-windows", "2", "-seed", "7", "-v"}
	code, dOut, dErr := runCLI(t, append(args,
		"-workers", w.Addr(), "-tls-ca", ca, "-tls-cert", cert, "-tls-key", key)...)
	if code != 0 {
		t.Fatalf("TLS distributed run: code = %d, stderr = %q", code, dErr)
	}
	if strings.Contains(dOut, "remote=0 ") || strings.Contains(dOut, "fallback=2 ") {
		t.Errorf("windows did not complete remotely over TLS: %q", dOut)
	}
	code, lOut, lErr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("local run: code = %d, stderr = %q", code, lErr)
	}
	if got, want := answerLines(dOut), answerLines(lOut); !slices.Equal(got, want) {
		t.Errorf("TLS distributed answers diverge from local PR\ndistributed: %v\nlocal:       %v", got, want)
	}

	// Without the client certificate the worker must refuse the handshake
	// and every window must fall back locally — never wrong answers.
	code, nOut, _ := runCLI(t, append(args, "-workers", w.Addr(), "-tls-ca", ca)...)
	if code != 0 {
		// NewDistributedEngine fails when no worker is reachable: also fine.
		return
	}
	if !strings.Contains(nOut, "remote=0 ") {
		t.Errorf("worker accepted a coordinator without a client cert: %q", nOut)
	}
}

// TestChaosFlag smoke-tests -chaos: the run must survive injected faults
// with correct answers and print the chaos stats line.
func TestChaosFlag(t *testing.T) {
	w, err := streamrule.NewWorkerServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve()
	defer w.Close()

	args := []string{"-paper", "P", "-window", "600", "-windows", "2", "-step", "300", "-seed", "7", "-v"}
	// The injector may refuse the engine-construction dial itself (its RNG
	// keys on the worker's ephemeral port, so one seed's draw is fixed for
	// the whole test process); retry with a fresh seed, as an operator
	// re-running the dev flag would.
	var code int
	var cOut, cErr string
	for attempt := 0; attempt < 25; attempt++ {
		seed := strconv.Itoa(42 + attempt)
		code, cOut, cErr = runCLI(t, append(args, "-workers", w.Addr(), "-chaos", seed, "-straggler", "2s")...)
		if code == 0 {
			break
		}
	}
	if code != 0 {
		t.Fatalf("chaos run: code = %d, stderr = %q", code, cErr)
	}
	if !strings.Contains(cOut, "chaos: injecting faults") || !strings.Contains(cOut, "chaos: refused-dials=") {
		t.Errorf("chaos lines missing: %q", cOut)
	}
	code, lOut, lErr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("local run: code = %d, stderr = %q", code, lErr)
	}
	if got, want := answerLines(cOut), answerLines(lOut); !slices.Equal(got, want) {
		t.Errorf("chaos answers diverge from local PR\nchaos: %v\nlocal: %v", got, want)
	}
}

// answerLines extracts the per-window answer atoms from -v output, the
// lines that must agree between distributed and local runs.
func answerLines(out string) []string {
	var answers []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "  answer ") {
			answers = append(answers, strings.TrimSpace(line))
		}
	}
	return answers
}

// TestServeMode drives the multi-tenant serving demo: tenants on a shared
// fleet, the ServerStats summary, and the per-tenant table.
func TestServeMode(t *testing.T) {
	code, out, errOut := runCLI(t, "-paper", "P", "-serve", "12", "-fleet", "2",
		"-window", "120", "-step", "40", "-windows", "2", "-budget", "256")
	if code != 0 {
		t.Fatalf("code = %d, stderr = %q", code, errOut)
	}
	if !strings.Contains(out, "serve: 12 tenants on 2 shared workers") {
		t.Errorf("serve summary missing: %q", out)
	}
	// 240 items, size 120 step 40: emissions at 120,160,200,240 = 4 per tenant.
	if !strings.Contains(out, "48 windows") {
		t.Errorf("window total missing: %q", out)
	}
	if !strings.Contains(out, "shed=0 errors=0") {
		t.Errorf("unhealthy fleet line: %q", out)
	}
	if !strings.Contains(out, "p99") || !strings.Contains(out, "live-atoms") {
		t.Errorf("stats table missing columns: %q", out)
	}
	if !strings.Contains(out, "more tenants elided") {
		t.Errorf("per-tenant table not elided at 12 tenants: %q", out)
	}
}
