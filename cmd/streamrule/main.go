// Command streamrule runs the full extended-StreamRule pipeline: a triple
// stream (from a file or the synthetic paper workload) is filtered, batched
// into windows, and reasoned over with the whole-window reasoner R, the
// dependency-partitioned parallel reasoner PR, the atom-level partitioner
// (PR with -atom fan-out), or the distributed reasoner DPR (partitions on
// remote workers). The same binary also serves as a worker.
//
// Usage:
//
//	streamrule -paper P -window 5000 -windows 4            # synthetic stream
//	streamrule -paper Pprime -mode R -window 10000
//	streamrule -paper P -mode PR -atom 4                   # atom-level split
//	streamrule -program rules.lp -inpre a,b -stream s.nt   # user program
//	streamrule -paper P -outputs traffic_jam,car_fire
//	streamrule -worker :7070                               # serve as a worker
//	streamrule -paper P -workers h1:7070,h2:7070           # coordinate DPR
package main

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"streamrule"
	"streamrule/internal/bench"
	"streamrule/internal/chaos"
	"streamrule/internal/rdf"
	"streamrule/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("streamrule", flag.ContinueOnError)
	fs.SetOutput(stderr)
	programFile := fs.String("program", "", "ASP program file")
	inpre := fs.String("inpre", "", "comma-separated input predicates (required with -program)")
	outputs := fs.String("outputs", "", "comma-separated output predicates (default: all derived, or the program's #show)")
	paper := fs.String("paper", "", "use a built-in paper program: P, Pprime, or Presidual (P + residual incident-response rules)")
	streamFile := fs.String("stream", "", "triple file 's p o .' per line (default: synthetic paper workload)")
	mode := fs.String("mode", "PR", "reasoner: R (whole window), PR (dependency-partitioned), or DPR (distributed; implied by -workers)")
	worker := fs.String("worker", "", "serve as a reasoning worker on this address (host:port) instead of running a pipeline")
	serveN := fs.Int("serve", 0, "multi-tenant serving demo: run this many concurrent tenant pipelines of the selected program over one shared fleet and print per-tenant stats")
	fleet := fs.Int("fleet", 4, "with -serve: shared executor workers in the fleet")
	workers := fs.String("workers", "", "comma-separated worker addresses; selects the distributed reasoner DPR")
	straggler := fs.Duration("straggler", 0, "with -workers: per-window worker timeout before local fallback (default 10s)")
	inflight := fs.Int("inflight", 1, "with -workers: pipeline depth — windows in flight per worker session (1 = lockstep)")
	atom := fs.Int("atom", 0, "with -mode PR: atom-level fan-out per splittable community (0 = predicate level)")
	window := fs.Int("window", 5000, "tuple-based window size")
	step := fs.Int("step", 0, "sliding step (< window makes the count window sliding; the engine then grounds incrementally)")
	windows := fs.Int("windows", 4, "number of synthetic windows to stream (with the generator)")
	seed := fs.Int64("seed", 1, "synthetic workload seed")
	rate := fs.Int("rate", 0, "stream rate in triples/second (0 = unpaced)")
	budget := fs.Int("budget", 0, "memory budget in interned atoms (> 0 evicts unreferenced table entries between windows; for streams with unbounded vocabularies)")
	budgetBytes := fs.Int64("budget-bytes", 0, "memory budget in approximate retained bytes (the byte-based successor of -budget; both may be combined)")
	adaptive := fs.Bool("adaptive", false, "with -workers: rebalance partitions across workers at runtime (migrate hot partitions, split overloaded communities under the duplication cost model)")
	naive := fs.Bool("naive-solver", false, "use the legacy rescan propagator instead of the counter/worklist engine (ablation; full enumerations identical)")
	cdnl := fs.Bool("cdnl", false, "use the conflict-driven solver with cross-window clause reuse (answers identical; work profile differs)")
	tlsCert := fs.String("tls-cert", "", "PEM certificate: the worker's serving cert with -worker, the coordinator's client cert with -workers (enables TLS)")
	tlsKey := fs.String("tls-key", "", "PEM private key for -tls-cert")
	tlsCA := fs.String("tls-ca", "", "PEM CA bundle: verifies coordinator client certs with -worker (mutual TLS), verifies workers with -workers")
	chaosSeed := fs.Int64("chaos", 0, "with -workers: wrap worker connections in the seeded fault injector at development rates (dial refusals, resets, corruption, duplicates, delays); same seed = same fault schedule")
	verbose := fs.Bool("v", false, "print every answer atom (default: summary per window)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	tlsConf, err := loadTLS(*tlsCert, *tlsKey, *tlsCA, *worker != "")
	if err != nil {
		return fail(stderr, err)
	}

	if *worker != "" {
		// Worker mode: no program of its own — every coordinator session
		// ships one in its handshake. Runs until interrupted.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		fmt.Fprintf(stdout, "worker: serving on %s\n", *worker)
		if err := streamrule.ServeWorkerTLS(ctx, *worker, tlsConf); err != nil && !errors.Is(err, context.Canceled) {
			return fail(stderr, err)
		}
		return 0
	}

	var src string
	var preds []string
	switch {
	case *paper == "P":
		src, preds = bench.ProgramP, bench.Inpre
	case *paper == "Pprime":
		src, preds = bench.ProgramPPrime, bench.Inpre
	case *paper == "Presidual":
		src, preds = bench.ProgramResidual, bench.Inpre
	case *programFile != "":
		data, err := os.ReadFile(*programFile)
		if err != nil {
			return fail(stderr, err)
		}
		src = string(data)
		preds = splitList(*inpre)
		if len(preds) == 0 {
			return fail(stderr, fmt.Errorf("-inpre is required with -program"))
		}
	default:
		fmt.Fprintln(stderr, "usage: streamrule (-paper P|Pprime | -program rules.lp -inpre ...) [flags]")
		fs.Usage()
		return 2
	}

	if *serveN > 0 {
		return serveTenants(stdout, stderr, src, preds, serveOpts{
			tenants: *serveN, fleet: *fleet,
			window: *window, step: *step, windows: *windows,
			seed: *seed, budget: *budget, budgetBytes: *budgetBytes,
		})
	}

	prog, err := streamrule.LoadProgram(src, preds)
	if err != nil {
		return fail(stderr, err)
	}
	var opts []streamrule.Option
	if outs := splitList(*outputs); len(outs) > 0 {
		opts = append(opts, streamrule.WithOutputPredicates(outs...))
	}
	if *budget > 0 {
		opts = append(opts, streamrule.WithMemoryBudget(*budget))
	}
	if *budgetBytes > 0 {
		opts = append(opts, streamrule.WithMemoryBudgetBytes(*budgetBytes))
	}
	if *naive {
		opts = append(opts, streamrule.WithNaivePropagation())
	}
	if *cdnl {
		opts = append(opts, streamrule.WithCDNL())
	}

	reasonerMode := strings.ToUpper(*mode)
	if *workers != "" {
		reasonerMode = "DPR"
	}
	var eng streamrule.Reasoner
	var distEng *streamrule.DistributedEngine
	var chaosInj *chaos.Injector
	switch reasonerMode {
	case "R":
		eng, err = streamrule.NewEngine(prog, opts...)
	case "DPR":
		addrs := splitList(*workers)
		if len(addrs) == 0 {
			return fail(stderr, fmt.Errorf("-mode DPR requires -workers host1:port,host2:port"))
		}
		if *adaptive {
			opts = append(opts, streamrule.WithAdaptiveRebalancing(streamrule.RebalanceOptions{}))
		} else if *atom > 0 {
			opts = append(opts, streamrule.WithAtomPartitioning(*atom))
		}
		if *straggler > 0 {
			opts = append(opts, streamrule.WithStragglerTimeout(*straggler))
		}
		if *inflight > 1 {
			opts = append(opts, streamrule.WithMaxInFlight(*inflight))
		}
		if tlsConf != nil {
			opts = append(opts, streamrule.WithTransportTLS(tlsConf))
		}
		if *chaosSeed != 0 {
			// Development fault rates: frequent enough to exercise every
			// recovery path over a short run, rare enough that most windows
			// still complete remotely.
			chaosInj = chaos.New(chaos.Config{
				Seed:       *chaosSeed,
				DialRefuse: 0.05,
				Reset:      0.02,
				Corrupt:    0.02,
				Duplicate:  0.01,
				Delay:      0.2,
				DelayFor:   2 * time.Millisecond,
			})
			opts = append(opts, streamrule.WithDialer(chaosInj.Dial))
			fmt.Fprintf(stdout, "chaos: injecting faults on the worker wire (seed %d)\n", *chaosSeed)
		}
		var de *streamrule.DistributedEngine
		de, err = streamrule.NewDistributedEngine(prog, addrs, opts...)
		if err == nil {
			defer de.Close()
			distEng = de
			fmt.Fprintf(stdout, "partitions: %d over %d worker(s)\n", de.Partitions(), len(addrs))
			if de.Plan() != nil {
				fmt.Fprintf(stdout, "partitioning plan:\n%s", de.Plan())
			}
		}
		eng = de
	case "PR":
		if *atom > 0 {
			opts = append(opts, streamrule.WithAtomPartitioning(*atom))
		}
		var pe *streamrule.ParallelEngine
		pe, err = streamrule.NewParallelEngine(prog, opts...)
		if err == nil {
			fmt.Fprintf(stdout, "partitions: %d\n", pe.Partitions())
			if pe.Plan() != nil {
				fmt.Fprintf(stdout, "partitioning plan:\n%s", pe.Plan())
			}
		}
		eng = pe
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		return fail(stderr, err)
	}

	var source []streamrule.Triple
	if *streamFile != "" {
		f, err := os.Open(*streamFile)
		if err != nil {
			return fail(stderr, err)
		}
		source, err = rdf.Read(f)
		f.Close()
		if err != nil {
			return fail(stderr, err)
		}
	} else {
		specs := workload.PaperTraffic()
		if *paper == "Presidual" {
			// The residual program pairs with its skewed workload: hostile
			// rates keep the solver off the fast path every window.
			specs = workload.ResidualTraffic()
		}
		gen, err := workload.NewGenerator(*seed, specs)
		if err != nil {
			return fail(stderr, err)
		}
		source = gen.Window(*window * *windows)
	}

	pl := &streamrule.Pipeline{
		Source:     source,
		Rate:       *rate,
		Filter:     streamrule.PredicateFilter(preds...),
		WindowSize: *window,
		WindowStep: *step,
		Reasoner:   eng,
	}
	n := 0
	var solveTotals streamrule.SolveStats
	residualWindows := 0
	err = pl.Run(context.Background(), func(win []streamrule.Triple, out *streamrule.Output) error {
		n++
		solveTotals.Add(out.SolveStats)
		if !out.SolveStats.FastPath {
			residualWindows++
		}
		ground := "scratch"
		if out.Incremental {
			ground = "incremental"
		}
		fmt.Fprintf(stdout, "window %d: %d items -> %d answer(s), %s grounding, latency total=%v critical-path=%v (convert=%v ground=%v solve=%v partition=%v combine=%v)\n",
			n, len(win), len(out.Answers), ground, out.Latency.Total, out.Latency.CriticalPath,
			out.Latency.Convert, out.Latency.Ground, out.Latency.Solve,
			out.Latency.Partition, out.Latency.Combine)
		for i, ans := range out.Answers {
			if *verbose {
				fmt.Fprintf(stdout, "  answer %d: %s\n", i+1, ans)
			} else {
				fmt.Fprintf(stdout, "  answer %d: %d atoms\n", i+1, ans.Len())
			}
		}
		return nil
	})
	if err != nil {
		return fail(stderr, err)
	}
	if residualWindows > 0 {
		// Solver work profile: only residual windows (programs the grounder
		// could not fully evaluate) engage the search; stratified windows
		// ride the fast path and contribute nothing here.
		fmt.Fprintf(stdout, "solver: residual-windows=%d/%d rule-visits=%d queue-pushes=%d source-repairs=%d choices=%d propagations=%d stability-checks=%d\n",
			residualWindows, n, solveTotals.RuleVisits, solveTotals.QueuePushes, solveTotals.SourceRepairs,
			solveTotals.Choices, solveTotals.Propagations, solveTotals.StabilityChecks)
		if *cdnl {
			fmt.Fprintf(stdout, "cdnl: conflicts=%d learned=%d backjumps=%d loop-nogoods=%d reused-clauses=%d\n",
				solveTotals.Conflicts, solveTotals.Learned, solveTotals.Backjumps,
				solveTotals.LoopNogoods, solveTotals.ReusedClauses)
		}
	}
	if st, ok := pl.MemoryStats(); ok && (st.Budget > 0 || st.BudgetBytes > 0) {
		fmt.Fprintf(stdout, "memory: budget=%d atoms budget-bytes=%d live=%d bytes=%d peak=%d rotations=%d shrinks=%d evicted=%d remap=%v\n",
			st.Budget, st.BudgetBytes, st.Table.Atoms, st.Table.Bytes, st.Table.PeakAtoms,
			st.Table.Rotations, st.Table.Shrinks, st.Table.EvictedAtoms, st.Table.RemapTime)
	}
	if ts, ok := pl.TransportStats(); ok {
		fmt.Fprintf(stdout, "transport: remote=%d fallback=%d redials=%d heartbeats=%d circuit-opens=%d crc-fail=%d sent=%dB recv=%dB dict-hit=%.1f%% worker-rotations=%d\n",
			ts.RemoteWindows, ts.LocalFallbacks, ts.Redials, ts.Heartbeats, ts.CircuitOpens,
			ts.ChecksumFailures, ts.BytesSent, ts.BytesReceived,
			100*ts.DictHitRate(), ts.WorkerRotations)
		if ts.Windows > 0 {
			fmt.Fprintf(stdout, "wire: rounds=%d req-bytes/win=%d resp-bytes/win=%d req-dict-hit=%.1f%% resp-dict-hit=%.1f%% mean-inflight=%.2f full=%d delta=%d\n",
				ts.Rounds, ts.BytesSent/ts.Windows, ts.BytesReceived/ts.Windows,
				100*ts.ReqDictHitRate(), 100*ts.DictHitRate(), ts.MeanInFlight(),
				ts.FullPartWindows, ts.DeltaPartWindows)
		}
	}
	if distEng != nil && *adaptive {
		rs := distEng.RebalanceStats()
		fmt.Fprintf(stdout, "rebalance: observed=%d moves=%d splits=%d refines=%d refused=%d joins=%d leaves=%d partitions=%d last=%q\n",
			rs.Observations, rs.Moves, rs.Splits, rs.PlanRefines, rs.RefusedSplits,
			rs.Joins, rs.Leaves, distEng.Partitions(), rs.LastAction)
	}
	if chaosInj != nil {
		cs := chaosInj.Stats()
		fmt.Fprintf(stdout, "chaos: refused-dials=%d resets=%d corrupted=%d duplicated=%d delayed=%d stalls=%d crashes=%d\n",
			cs.RefusedDials, cs.Resets, cs.CorruptedFrames, cs.DuplicatedFrames,
			cs.DelayedFrames, cs.Stalls, cs.Crashes)
	}
	return 0
}

// loadTLS builds the TLS configuration from the -tls-* flags; all empty =
// nil (plaintext). A worker serves with cert+key and — when a CA is given —
// demands client certificates signed by it (mutual TLS). A coordinator
// verifies workers against the CA and presents cert+key as its client
// identity when provided.
func loadTLS(certFile, keyFile, caFile string, isWorker bool) (*tls.Config, error) {
	if certFile == "" && keyFile == "" && caFile == "" {
		return nil, nil
	}
	cfg := &tls.Config{}
	if (certFile == "") != (keyFile == "") {
		return nil, fmt.Errorf("-tls-cert and -tls-key must be given together")
	}
	if certFile != "" {
		cert, err := tls.LoadX509KeyPair(certFile, keyFile)
		if err != nil {
			return nil, fmt.Errorf("loading TLS keypair: %w", err)
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	var pool *x509.CertPool
	if caFile != "" {
		pem, err := os.ReadFile(caFile)
		if err != nil {
			return nil, fmt.Errorf("loading TLS CA: %w", err)
		}
		pool = x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pem) {
			return nil, fmt.Errorf("no certificates in %s", caFile)
		}
	}
	if isWorker {
		if certFile == "" {
			return nil, fmt.Errorf("-worker with TLS requires -tls-cert and -tls-key")
		}
		if pool != nil {
			cfg.ClientCAs = pool
			cfg.ClientAuth = tls.RequireAndVerifyClientCert
		}
	} else if pool != nil {
		cfg.RootCAs = pool
	}
	return cfg, nil
}

type serveOpts struct {
	tenants, fleet        int
	window, step, windows int
	budget                int
	budgetBytes, seed     int64
}

// serveTenants is the -serve mode: N concurrent tenant pipelines of the same
// program — each over its own tenant-prefixed synthetic stream and private
// intern table — multiplexed onto one shared fleet, then the ServerStats
// table.
func serveTenants(stdout, stderr io.Writer, src string, preds []string, o serveOpts) int {
	srv := streamrule.NewServer(streamrule.ServerConfig{Workers: o.fleet})
	defer srv.Close()

	items := o.window * o.windows
	step := o.step
	if step <= 0 {
		step = o.window
	}
	ids := make([]string, o.tenants)
	streams := make([][]streamrule.Triple, o.tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("t%d", i)
		gen, err := workload.NewGenerator(o.seed+int64(i), workload.TenantTraffic(ids[i]))
		if err != nil {
			return fail(stderr, err)
		}
		streams[i] = gen.Window(items)
		err = srv.AddTenant(ids[i], streamrule.TenantConfig{
			Program: src, Inpre: preds,
			WindowSize: o.window, WindowStep: o.step,
			MemoryBudget: o.budget, MemoryBudgetBytes: o.budgetBytes,
			QueueDepth: items/step + 2,
		})
		if err != nil {
			return fail(stderr, err)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	pushErr := make(chan error, o.tenants)
	for i := range ids {
		wg.Add(1)
		go func(id string, triples []streamrule.Triple) {
			defer wg.Done()
			for _, tr := range triples {
				if err := srv.Push(id, tr); err != nil {
					pushErr <- fmt.Errorf("%s: %w", id, err)
					return
				}
			}
		}(ids[i], streams[i])
	}
	wg.Wait()
	select {
	case err := <-pushErr:
		return fail(stderr, err)
	default:
	}
	if err := srv.DrainAll(); err != nil {
		return fail(stderr, err)
	}
	elapsed := time.Since(start)

	st := srv.Stats()
	fmt.Fprintf(stdout, "serve: %d tenants on %d shared workers: %d windows in %v (%.0f windows/sec)\n",
		st.Tenants, st.Workers, st.TotalWindows, elapsed.Round(time.Millisecond),
		float64(st.TotalWindows)/elapsed.Seconds())
	fmt.Fprintf(stdout, "fleet: p50=%v p99=%v shed=%d errors=%d fallbacks=%d live-atoms=%d\n",
		st.P50, st.P99, st.TotalShed, st.TotalErrors, st.TotalFallbacks, st.LiveAtoms)
	const maxRows = 8
	fmt.Fprintf(stdout, "%-10s %8s %8s %10s %10s %6s %6s %10s\n",
		"tenant", "windows", "queue", "p50", "p99", "shed", "errs", "live-atoms")
	for i, row := range st.PerTenant {
		if i == maxRows {
			fmt.Fprintf(stdout, "... %d more tenants elided\n", len(st.PerTenant)-maxRows)
			break
		}
		fmt.Fprintf(stdout, "%-10s %8d %8d %10v %10v %6d %6d %10d\n",
			row.ID, row.Windows, row.QueueLen, row.P50.Round(time.Microsecond),
			row.P99.Round(time.Microsecond), row.Shed, row.Errors, row.LiveAtoms)
	}
	return 0
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "streamrule:", err)
	return 1
}
