package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestSolveFromStdin(t *testing.T) {
	code, out, _ := runCLI(t, "a :- not b. b :- not a.", "-")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "Answer 1: {a}") || !strings.Contains(out, "Answer 2: {b}") {
		t.Errorf("out = %q", out)
	}
	if !strings.Contains(out, "SATISFIABLE") {
		t.Errorf("out = %q", out)
	}
}

func TestUnsatExitCode(t *testing.T) {
	code, out, _ := runCLI(t, "p :- not p.", "-")
	if code != 1 || !strings.Contains(out, "UNSATISFIABLE") {
		t.Errorf("code = %d, out = %q", code, out)
	}
}

func TestMaxModels(t *testing.T) {
	code, out, _ := runCLI(t, "{a; b; c}.", "-models", "2", "-")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if strings.Count(out, "Answer") != 2 {
		t.Errorf("out = %q", out)
	}
}

func TestGroundOnly(t *testing.T) {
	code, out, _ := runCLI(t, "p(1..3). q(X) :- p(X), not r(X).", "-ground", "-")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	for _, want := range []string{"p(1).", "p(2).", "p(3).", "q(1).", "q(2).", "q(3)."} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestShowProjection(t *testing.T) {
	code, out, _ := runCLI(t, `
p(1). q(2).
#show q/1.
`, "-")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "Answer 1: {q(2)}") {
		t.Errorf("out = %q", out)
	}
}

func TestFactsFile(t *testing.T) {
	dir := t.TempDir()
	progFile := filepath.Join(dir, "prog.lp")
	factsFile := filepath.Join(dir, "facts.lp")
	if err := os.WriteFile(progFile, []byte("q(X) :- p(X)."), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(factsFile, []byte("p(1). p(2)."), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCLI(t, "", "-facts", factsFile, progFile)
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "q(1)") || !strings.Contains(out, "q(2)") {
		t.Errorf("out = %q", out)
	}
}

func TestStatsToStderr(t *testing.T) {
	code, _, errOut := runCLI(t, "p(1).", "-stats", "-")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(errOut, "ground:") || !strings.Contains(errOut, "solve:") {
		t.Errorf("stderr = %q", errOut)
	}
}

func TestErrors(t *testing.T) {
	if code, _, _ := runCLI(t, "", "-"); code == 0 {
		// empty program: one empty answer set — actually fine.
		t.Log("empty program accepted")
	}
	if code, _, errOut := runCLI(t, "p(X) :- .", "-"); code != 1 || errOut == "" {
		t.Errorf("syntax error: code = %d, stderr = %q", code, errOut)
	}
	if code, _, _ := runCLI(t, "", "no-such-file.lp"); code != 1 {
		t.Errorf("missing file: code = %d", code)
	}
	if code, _, _ := runCLI(t, ""); code != 2 {
		t.Errorf("no args: code = %d", code)
	}
	if code, _, _ := runCLI(t, "", "-badflag", "-"); code != 2 {
		t.Errorf("bad flag: code = %d", code)
	}
}
