// Command asp grounds and solves an ASP program — a small Clingo-style
// front-end over the engine in internal/asp, useful for inspecting what the
// reasoner does with a rule set.
//
// Usage:
//
//	asp program.lp                # solve, print all answer sets
//	asp -models 1 program.lp      # stop after the first answer set
//	asp -ground program.lp        # print the simplified ground program
//	asp -facts facts.lp program.lp
//	echo 'a :- not b. b :- not a.' | asp -
//
// #show directives in the program project the printed answer sets.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/ground"
	"streamrule/internal/asp/parser"
	"streamrule/internal/asp/solve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("asp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	models := fs.Int("models", 0, "maximum number of answer sets to print (0 = all)")
	groundOnly := fs.Bool("ground", false, "print the ground program instead of solving")
	factsFile := fs.String("facts", "", "file of additional facts (one ground fact per line, ASP syntax)")
	stats := fs.Bool("stats", false, "print grounding/solving statistics")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: asp [flags] <program.lp | ->")
		fs.Usage()
		return 2
	}
	src, err := readInput(fs.Arg(0), stdin)
	if err != nil {
		return fail(stderr, err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return fail(stderr, err)
	}

	var facts []ast.Atom
	if *factsFile != "" {
		data, err := os.ReadFile(*factsFile)
		if err != nil {
			return fail(stderr, err)
		}
		fprog, err := parser.Parse(string(data))
		if err != nil {
			return fail(stderr, fmt.Errorf("facts: %w", err))
		}
		for _, r := range fprog.Rules {
			if !r.IsFact() || !r.Head[0].IsGround() {
				return fail(stderr, fmt.Errorf("facts file must contain only ground facts, got %q", r))
			}
			facts = append(facts, r.Head[0])
		}
	}

	gp, err := ground.Ground(prog, facts, ground.Options{})
	if err != nil {
		return fail(stderr, err)
	}
	if *stats {
		fmt.Fprintf(stderr, "ground: atoms=%d rules=%d certain=%d iterations=%d\n",
			gp.Stats.Atoms, gp.Stats.Rules, gp.Stats.CertainFacts, gp.Stats.Iterations)
	}
	if *groundOnly {
		for _, a := range gp.Certain {
			fmt.Fprintf(stdout, "%s.\n", a)
		}
		for _, r := range gp.Rules {
			fmt.Fprintln(stdout, r)
		}
		if gp.Inconsistent {
			fmt.Fprintln(stdout, "% inconsistent: a constraint is violated by certain atoms")
		}
		return 0
	}

	res, err := solve.Solve(gp, solve.Options{MaxModels: *models})
	if err != nil {
		return fail(stderr, err)
	}
	if *stats {
		fmt.Fprintf(stderr, "solve: fastpath=%v choices=%d propagations=%d stability-checks=%d\n",
			res.Stats.FastPath, res.Stats.Choices, res.Stats.Propagations, res.Stats.StabilityChecks)
	}
	if len(res.Models) == 0 {
		fmt.Fprintln(stdout, "UNSATISFIABLE")
		return 1
	}
	show := showFilter(prog)
	for i, m := range res.Models {
		fmt.Fprintf(stdout, "Answer %d: %s\n", i+1, show(m))
	}
	fmt.Fprintln(stdout, "SATISFIABLE")
	return 0
}

// showFilter projects answer sets to the program's #show declarations
// (identity when there are none).
func showFilter(prog *ast.Program) func(*solve.AnswerSet) *solve.AnswerSet {
	if len(prog.Shows) == 0 {
		return func(m *solve.AnswerSet) *solve.AnswerSet { return m }
	}
	shown := make(map[string]bool, len(prog.Shows))
	for _, s := range prog.Shows {
		shown[fmt.Sprintf("%s/%d", s.Pred, s.Arity)] = true
	}
	return func(m *solve.AnswerSet) *solve.AnswerSet {
		var kept []ast.Atom
		for _, a := range m.Atoms() {
			if shown[a.PredKey()] {
				kept = append(kept, a)
			}
		}
		return solve.NewAnswerSet(kept)
	}
}

func readInput(name string, stdin io.Reader) (string, error) {
	if name == "-" {
		data, err := io.ReadAll(stdin)
		return string(data), err
	}
	data, err := os.ReadFile(name)
	return string(data), err
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "asp:", err)
	return 1
}
