package streamrule

import (
	"sync"
	"testing"

	"streamrule/internal/testleak"
	"streamrule/internal/workload"
)

// TestServerFacadeQuickstart drives the multi-tenant facade end to end: two
// tenants (one budgeted) over a shared two-worker fleet, stats, and clean
// shutdown.
func TestServerFacadeQuickstart(t *testing.T) {
	defer testleak.Check(t)()
	srv := NewServer(ServerConfig{Workers: 2})
	defer srv.Close()

	var mu sync.Mutex
	windows := map[string]int{}
	handleFor := func(id string) func([]Triple, *Output) {
		return func(_ []Triple, out *Output) {
			mu.Lock()
			windows[id]++
			mu.Unlock()
		}
	}
	for _, id := range []string{"city-a", "city-b"} {
		tc := TenantConfig{
			Program: testProgramP, Inpre: testInpre,
			WindowSize: 500, WindowStep: 100,
			QueueDepth: 32, // all 11 emissions may queue before the fleet catches up
			Handle:     handleFor(id),
		}
		if id == "city-b" {
			tc.MemoryBudget = 4096
			tc.Overflow = BlockIngress
		}
		if err := srv.AddTenant(id, tc); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.AddTenant("city-a", TenantConfig{Program: testProgramP, Inpre: testInpre, WindowSize: 10}); err != ErrDuplicateTenant {
		t.Fatalf("duplicate add: err = %v", err)
	}

	gen, err := workload.NewGenerator(21, workload.PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range gen.Window(1500) {
		if err := srv.Push("city-a", tr); err != nil {
			t.Fatal(err)
		}
		if err := srv.Push("city-b", tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.DrainAll(); err != nil {
		t.Fatal(err)
	}

	// 1500 items, size 500 step 100: emissions at 500,600,...,1500 = 11.
	mu.Lock()
	defer mu.Unlock()
	for id, n := range windows {
		if n != 11 {
			t.Errorf("%s handled %d windows, want 11", id, n)
		}
	}
	st := srv.Stats()
	if st.Tenants != 2 || st.TotalWindows != 22 || st.TotalErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.P99 <= 0 || st.LiveAtoms <= 0 {
		t.Fatalf("missing latency/footprint metrics: %+v", st)
	}
	row, ok := srv.TenantStats("city-b")
	if !ok || row.Windows != 11 {
		t.Fatalf("tenant row = %+v", row)
	}
	if err := srv.RemoveTenant("city-a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.TenantStats("city-a"); ok {
		t.Fatal("removed tenant still has stats")
	}
	if err := srv.Push("city-a", Triple{S: "x", P: "average_speed", O: "1"}); err != ErrUnknownTenant {
		t.Fatalf("push to removed tenant: err = %v", err)
	}
}
