package streamrule

import (
	"context"
	"crypto/tls"
	"errors"
	"net"
	"time"

	"streamrule/internal/reasoner"
	"streamrule/internal/transport"
)

// TransportStats aggregates the wire metrics of a distributed engine:
// remote vs fallback windows, redials, bytes shipped, and the per-worker
// dictionary hit rate (see DistributedEngine).
type TransportStats = reasoner.TransportStats

// RebalanceOptions tunes the adaptive rebalancer enabled by
// WithAdaptiveRebalancing: skew threshold, sustain/cooldown windows, the
// per-community fan-out cap, and the Louvain resolution ladder for plan
// refines. The zero value uses the documented defaults.
type RebalanceOptions = reasoner.RebalanceOptions

// RebalanceStats counts the adaptive rebalancer's decisions: windows
// observed, partition moves, accepted community splits and plan refines,
// splits refused by the duplication cost model, and elastic worker joins
// and leaves.
type RebalanceStats = reasoner.RebalanceStats

// PartitionLoad is one partition's observed load in the most recently
// processed window: routed items, compute critical path, the worker
// serving it, and whether it was answered remotely.
type PartitionLoad = reasoner.PartitionLoad

// CircuitBreakerOptions tunes the per-worker-session circuit breaker of the
// distributed engine (see WithCircuitBreaker): consecutive-failure
// threshold, base/max quarantine delays, and the jitter fraction. The zero
// value uses the documented defaults (3 failures, 250ms base, 15s cap,
// ±20% jitter).
type CircuitBreakerOptions = reasoner.BreakerOptions

// DialFunc dials one worker connection (see WithDialer). It receives the
// worker address and the configured dial timeout and returns a connected
// net.Conn.
type DialFunc = transport.DialFunc

// WithAdaptiveRebalancing makes partitioning a runtime concern for the
// distributed engine: the coordinator observes every window's per-partition
// load, and — between windows — migrates partitions from hot to cold
// workers and hash-splits overloaded communities along the proven atom-level
// key. A split whose replicated traffic would exceed the projected speedup
// is refused (the paper's duplication-share analysis, applied online).
// Migrations ride the session machinery: affected workers get a fresh
// session whose next window ships in full — answers are never dropped, at
// the cost of one full-window reship per migration. Incompatible with
// WithRandomPartitioning; supersedes WithAtomPartitioning.
func WithAdaptiveRebalancing(ro RebalanceOptions) Option {
	return func(o *options) { o.adaptive = &ro }
}

// WithStragglerTimeout bounds one remote round of the distributed engine
// (ship the partition, reason, receive answers). A worker that misses the
// deadline is treated as down for that window: the partition is processed
// locally and the session is re-established behind the scenes. Default 10s.
func WithStragglerTimeout(d time.Duration) Option {
	return func(o *options) { o.stragglerTimeout = d }
}

// WithMaxInFlight sets the distributed engine's pipeline depth: up to n
// windows may be submitted-but-unanswered per worker session, overlapping
// the shipping and partitioning of window n+1 with the remote grounding and
// solving of window n. Depth 1 (the default) is the classic request/
// response lockstep. Results always surface in window order, answers are
// identical at every depth; only latency differs. The Pipeline drives a
// deeper engine through Submit/Collect automatically. Sizing: 2 hides the
// coordinator's partition+ship time behind remote compute, which is all
// there is to win on a single stream; deeper only pays when wire latency
// exceeds per-window compute.
func WithMaxInFlight(n int) Option {
	return func(o *options) { o.maxInFlight = n }
}

// WithCircuitBreaker tunes the distributed engine's per-worker-session
// circuit breaker. After Threshold consecutive failures (dial errors,
// transport breaks, desyncs, stragglers, failed heartbeats) the session is
// quarantined: windows fall back locally without paying a dial or timeout,
// and redials resume after a capped, jittered exponential backoff probes
// the worker successfully. The zero value is the default behavior — the
// breaker is always on; this option only re-tunes it.
func WithCircuitBreaker(cb CircuitBreakerOptions) Option {
	return func(o *options) { o.breaker = cb }
}

// WithHeartbeat sets the distributed engine's idle-session health probing.
// A session idle for interval (no successful round, ping, or dial) is
// probed with a protocol-level ping before the next window ships; a probe
// that misses timeout retires the session immediately, so the window takes
// the fast redial-or-fallback path instead of burning a straggler timeout
// on a dead worker. interval 0 keeps the default (2s), negative disables
// probing; timeout 0 defaults to a quarter of the straggler timeout.
func WithHeartbeat(interval, timeout time.Duration) Option {
	return func(o *options) { o.heartbeat, o.heartbeatTimeout = interval, timeout }
}

// WithDialer overrides how the distributed engine reaches its workers (the
// default is plain TCP). This is the hook for custom networks and for
// fault-injection harnesses that wrap real connections.
func WithDialer(d DialFunc) Option {
	return func(o *options) { o.dialer = d }
}

// WithTransportTLS wraps every worker connection of the distributed engine
// in TLS with the given configuration (nil leaves the wire in plaintext).
// ServerName is derived from the worker address when unset. Pair it with a
// TLS-enabled worker (NewWorkerServerTLS / ServeWorkerTLS); mutual TLS
// works the usual way via Certificates and RootCAs.
func WithTransportTLS(cfg *tls.Config) Option {
	return func(o *options) { o.tlsConf = cfg }
}

// DistributedEngine is the sharded parallel reasoner DPR: the partitioning
// and combining handlers of ParallelEngine with the k reasoner copies
// running on remote workers (one session per partition, assigned
// round-robin over the worker addresses). Windows ship as plain triples;
// answer sets come back in a portable wire form, re-interned through a
// cached per-worker symbol dictionary so steady-state windows ship only
// symbols the coordinator has never seen.
//
// Every partition keeps a local fallback reasoner: a worker that is down,
// straggling, or desynchronized costs latency for that window, never
// correctness. With WithMemoryBudget, workers bound their interning tables
// by rotation (each session owns a private table) and the coordinator
// applies the same budget to its answer table.
//
// A DistributedEngine must not process windows concurrently (same contract
// as Engine and ParallelEngine). Close it when done to release the worker
// sessions.
type DistributedEngine struct {
	dpr  *reasoner.DPR
	plan *Plan
}

// NewDistributedEngine builds a distributed engine for the program against
// the given worker addresses (host:port, see ServeWorker for the worker
// side). The dependency analysis runs at construction time, exactly as in
// NewParallelEngine, and the same partitioning options apply
// (WithRandomPartitioning, WithAtomPartitioning). Construction fails when
// no worker is reachable.
func NewDistributedEngine(p *Program, workers []string, opts ...Option) (*DistributedEngine, error) {
	o := buildOptions(opts)
	part, plan, err := buildPartitioner(p, o)
	if err != nil {
		return nil, err
	}
	dpr, err := reasoner.NewDPR(p.config(o), part, reasoner.DPROptions{
		Workers:           workers,
		ProgramSource:     p.Source(),
		StragglerTimeout:  o.stragglerTimeout,
		MaxInFlight:       o.maxInFlight,
		Rebalance:         o.adaptive,
		Dialer:            o.dialer,
		TLS:               o.tlsConf,
		HeartbeatInterval: o.heartbeat,
		HeartbeatTimeout:  o.heartbeatTimeout,
		Breaker:           o.breaker,
	})
	if err != nil {
		return nil, err
	}
	return &DistributedEngine{dpr: dpr, plan: plan}, nil
}

// Plan returns the dependency partitioning plan, or nil when random
// partitioning is configured.
func (e *DistributedEngine) Plan() *Plan { return e.plan }

// Partitions returns the number of partitions (= worker sessions).
func (e *DistributedEngine) Partitions() int { return e.dpr.NumPartitions() }

// Reason processes one window: partition, ship the sub-windows to the
// workers in parallel, combine the decoded answers.
func (e *DistributedEngine) Reason(window []Triple) (*Output, error) { return e.dpr.Process(window) }

// ReasonDelta is the incremental Reason for overlapping windows: each
// worker session maintains its partition's grounding across windows, so a
// steady-state sliding window costs the workers a delta update instead of
// a re-grounding — and the coordinator only the changed answers.
func (e *DistributedEngine) ReasonDelta(window []Triple, d *Delta) (*Output, error) {
	return e.dpr.ProcessDelta(window, d)
}

// Submit ships one window into the engine's pipeline without waiting for
// its result; Collect returns results strictly in submission order. A nil
// delta forces from-scratch processing (mirroring ReasonDelta). Submit
// fails when PipelineDepth windows are already in flight.
func (e *DistributedEngine) Submit(window []Triple, d *Delta) error {
	return e.dpr.Submit(window, d)
}

// Collect blocks for the oldest in-flight window's result.
func (e *DistributedEngine) Collect() (*Output, error) { return e.dpr.Collect() }

// InFlight returns the number of submitted windows not yet collected.
func (e *DistributedEngine) InFlight() int { return e.dpr.InFlight() }

// PipelineDepth returns the configured WithMaxInFlight depth (≥ 1).
func (e *DistributedEngine) PipelineDepth() int { return e.dpr.MaxInFlight() }

// Stats returns the engine's memory metrics; MemoryStats.Transport
// additionally carries the wire metrics (bytes shipped, dictionary hit
// rate, fallbacks).
func (e *DistributedEngine) Stats() MemoryStats { return e.dpr.Stats() }

// TransportStats returns the engine's wire metrics alone.
func (e *DistributedEngine) TransportStats() TransportStats { return e.dpr.TransportStats() }

// RebalanceStats returns the adaptive rebalancer's decision counters (the
// join/leave counters tick even without WithAdaptiveRebalancing).
func (e *DistributedEngine) RebalanceStats() RebalanceStats { return e.dpr.RebalanceStats() }

// PartitionLoads returns the per-partition load rows of the most recently
// processed window (nil before the first). The slice is reused across
// windows; copy it to retain.
func (e *DistributedEngine) PartitionLoads() []PartitionLoad { return e.dpr.PartitionLoads() }

// Workers lists the current worker addresses.
func (e *DistributedEngine) Workers() []string { return e.dpr.Workers() }

// AddWorker grows the worker fleet between windows (no windows may be in
// flight): partitions are re-balanced onto the new worker immediately, the
// affected sessions reship full sub-windows on the next window, and no
// answers are dropped.
func (e *DistributedEngine) AddWorker(addr string) error { return e.dpr.AddWorker(addr) }

// RemoveWorker shrinks the worker fleet between windows: the departing
// worker's partitions move to the remaining workers and its wire counters
// are folded into TransportStats. The last worker cannot be removed.
func (e *DistributedEngine) RemoveWorker(addr string) error { return e.dpr.RemoveWorker(addr) }

// Close releases every worker session. The engine must not be used
// afterwards.
func (e *DistributedEngine) Close() { e.dpr.Close() }

// WorkerServer hosts reasoning sessions for distributed coordinators: each
// incoming connection carries a program in its handshake and gets a full
// private reasoner (incremental, and memory-bounded when the coordinator
// configured a budget). One worker process can serve many coordinators and
// programs at once.
type WorkerServer struct {
	srv *transport.Server
}

// NewWorkerServer listens on addr (host:port; port 0 picks a free port).
// Call Serve to start accepting sessions.
func NewWorkerServer(addr string) (*WorkerServer, error) {
	return NewWorkerServerTLS(addr, nil)
}

// NewWorkerServerTLS is NewWorkerServer with every session wrapped in TLS
// using the given configuration (nil = plaintext, identical to
// NewWorkerServer). Set ClientCAs and ClientAuth for mutual TLS.
func NewWorkerServerTLS(addr string, cfg *tls.Config) (*WorkerServer, error) {
	srv, err := transport.NewServer(addr, reasoner.NewWorkerHandler(), transport.ServerOptions{TLS: cfg})
	if err != nil {
		return nil, err
	}
	return &WorkerServer{srv: srv}, nil
}

// Addr returns the bound listen address (useful with port 0).
func (w *WorkerServer) Addr() string { return w.srv.Addr() }

// Serve accepts coordinator sessions until Close. It always returns a
// non-nil error; after Close the error is net.ErrClosed.
func (w *WorkerServer) Serve() error { return w.srv.Serve() }

// Close stops the server and tears down every live session.
func (w *WorkerServer) Close() error { return w.srv.Close() }

// Shutdown stops accepting sessions and drains the live ones: a session in
// the middle of a window finishes and delivers that window's response, idle
// sessions close immediately. Sessions still busy when the grace period
// expires are force-closed. It returns nil when every session drained in
// time.
func (w *WorkerServer) Shutdown(grace time.Duration) error { return w.srv.Shutdown(grace) }

// ServeWorker runs a worker on addr until the context is cancelled — the
// one-call worker side of the distributed engine (cmd/streamrule -worker
// wraps exactly this).
func ServeWorker(ctx context.Context, addr string) error {
	return ServeWorkerTLS(ctx, addr, nil)
}

// ServeWorkerTLS is ServeWorker with the sessions wrapped in TLS (nil cfg =
// plaintext). On context cancellation the worker drains in-flight windows
// for up to five seconds before force-closing.
func ServeWorkerTLS(ctx context.Context, addr string, cfg *tls.Config) error {
	w, err := NewWorkerServerTLS(addr, cfg)
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- w.Serve() }()
	select {
	case <-ctx.Done():
		w.Shutdown(5 * time.Second)
		<-done
		return ctx.Err()
	case err := <-done:
		if errors.Is(err, net.ErrClosed) {
			return nil
		}
		return err
	}
}
