// Package streamrule is a Go reproduction — and production-oriented
// extension — of "Towards Scalable Non-monotonic Stream Reasoning via Input
// Dependency Analysis" (Pham, Ali, Mileo — ICDE 2017): an ASP-based stream
// reasoning system in the style of StreamRule, extended with
// dependency-driven window partitioning.
//
// The package is a thin facade over the engine packages in internal/: an
// ASP grounder and stable-model solver, the input dependency analysis that
// is the paper's contribution, and the partitioned reasoning layer in its
// three topologies — the whole-window Engine (the paper's reasoner R), the
// in-process ParallelEngine (PR: one goroutine per dependency partition),
// and the DistributedEngine (DPR: one remote worker session per partition).
//
// Typical in-process use:
//
//	p, err := streamrule.LoadProgram(rules, inpre)
//	eng, err := streamrule.NewParallelEngine(p)   // analyzes dependencies
//	out, err := eng.Reason(window)                // []streamrule.Triple
//	fmt.Println(out.Answers[0])
//
// For overlapping sliding windows, feed the windower's delta instead
// (ReasonDelta) and the engine maintains its grounding incrementally; the
// Pipeline type wires a source, filter, window operator, and reasoner
// together and does this automatically.
//
// Distributed use splits the same pipeline across processes: start workers
// with ServeWorker (or cmd/streamrule -worker), then build a
// DistributedEngine against their addresses. Workers receive the program in
// the session handshake and return answers in a portable wire form; every
// partition falls back to in-process reasoning when its worker is
// unreachable, so answers never depend on the fleet's health.
//
// See ARCHITECTURE.md for the design (paper concepts → packages, the
// interned-ID lifecycle, window lifecycles), docs/OPERATIONS.md for the
// deployment runbook, examples/ for runnable programs, and cmd/ for the
// CLIs.
package streamrule
