package streamrule

import (
	"streamrule/internal/serve"
)

// Overflow selects what Server.Push does when a tenant's bounded ingress
// queue is full: ShedOldest or BlockIngress.
type Overflow = serve.Overflow

// Overflow policies for TenantConfig.Overflow.
const (
	// ShedOldest drops the oldest queued window to admit the new one
	// (counted per tenant; the surviving successor window is re-seeded from
	// scratch so the tenant's incremental state stays correct).
	ShedOldest Overflow = serve.ShedOldest
	// BlockIngress makes Push wait for queue room — backpressure to the
	// producer.
	BlockIngress Overflow = serve.Block
)

// ServerConfig sizes the shared fleet of a Server: executor goroutines,
// the deficit round-robin quantum, and the default per-tenant queue depth.
type ServerConfig = serve.Config

// TenantConfig describes one pipeline multiplexed onto a Server: program,
// input predicates, window shape, memory budget, overflow policy, optional
// remote worker addresses, and the per-window Handle callback.
type TenantConfig = serve.TenantConfig

// ServerStats aggregates a Server's serving metrics: fleet size, per-tenant
// rows (windows, latency percentiles, fallbacks, live atoms, shed/blocked
// counts), and fleet totals.
type ServerStats = serve.ServerStats

// TenantStats is one tenant's serving metrics row within ServerStats.
type TenantStats = serve.TenantStats

// Serving errors returned by Server tenant operations.
var (
	// ErrServerClosed is returned by operations on a closed Server.
	ErrServerClosed = serve.ErrClosed
	// ErrUnknownTenant is returned for tenant ids that are not registered.
	ErrUnknownTenant = serve.ErrUnknownTenant
	// ErrDuplicateTenant is returned by AddTenant for an id already in use.
	ErrDuplicateTenant = serve.ErrDuplicateTenant
	// ErrTenantRemoved is returned when an operation's tenant was removed
	// while the operation waited.
	ErrTenantRemoved = serve.ErrRemoved
)

// Server multiplexes many independent pipelines — tenants, each with its own
// program, stream, private intern table, and byte budget — over one shared
// fleet of executor workers, with deficit-round-robin fair scheduling,
// bounded per-tenant ingress queues, and tenant add/remove/drain that never
// disturbs neighbors. It is the multi-tenant serving layer: "millions of
// users" as many programs × many streams in one process. All methods are
// safe for concurrent use.
type Server struct {
	s *serve.Server
}

// NewServer starts the shared fleet and returns an empty server; add
// pipelines with AddTenant and feed them with Push.
func NewServer(cfg ServerConfig) *Server {
	return &Server{s: serve.NewServer(cfg)}
}

// AddTenant admits a new pipeline under id. The tenant's engine always owns
// a private intern table (rotating when a memory budget is set), so tenants
// never share — or grow — the process-wide default table.
func (s *Server) AddTenant(id string, tc TenantConfig) error { return s.s.AddTenant(id, tc) }

// Push feeds one triple into the tenant's window operator; completed windows
// queue for the fleet. When the tenant's queue is full, Push sheds the
// oldest window or blocks, per the tenant's Overflow policy.
func (s *Server) Push(id string, tr Triple) error { return s.s.Push(id, tr) }

// Drain flushes the tenant's uncovered window tail and blocks until all its
// queued windows are processed and delivered.
func (s *Server) Drain(id string) error { return s.s.Drain(id) }

// DrainAll drains every registered tenant.
func (s *Server) DrainAll() error { return s.s.DrainAll() }

// RemoveTenant evicts a tenant without disturbing its neighbors: the
// in-flight window (if any) completes and is delivered, queued windows are
// discarded, and the tenant's engine is released.
func (s *Server) RemoveTenant(id string) error { return s.s.RemoveTenant(id) }

// Resize grows or shrinks the fleet to n executor goroutines; shrinking
// takes effect as workers finish their current window.
func (s *Server) Resize(n int) { s.s.Resize(n) }

// FleetWorkers returns the current fleet size target.
func (s *Server) FleetWorkers() int { return s.s.Workers() }

// AddWorker joins a remote worker address to every remote-backed tenant
// (elastic join, quiescing each tenant's in-flight window first). Tenants
// with local engines are unaffected.
func (s *Server) AddWorker(addr string) error { return s.s.AddWorker(addr) }

// RemoveWorker removes a remote worker address from every remote-backed
// tenant; a tenant whose last worker would be removed reports an error and
// the first such error is returned after the sweep.
func (s *Server) RemoveWorker(addr string) error { return s.s.RemoveWorker(addr) }

// Stats snapshots the server's aggregate and per-tenant serving metrics.
func (s *Server) Stats() ServerStats { return s.s.Stats() }

// TenantStats returns one tenant's metrics row (ok=false when unknown).
func (s *Server) TenantStats(id string) (TenantStats, bool) { return s.s.TenantStats(id) }

// Close stops the fleet: in-flight windows complete, queued windows are
// discarded, and every tenant engine is released. The server must not be
// used afterwards.
func (s *Server) Close() { s.s.Close() }
