# Convenience targets — everything here also runs through plain go commands.

.PHONY: test race chaos chaos-smoke bench6 bench7 bench8

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/transport ./internal/reasoner

# chaos runs the deterministic fault-injection differential (8 schedules x
# 3 program classes x pipeline depths) plus the serve-layer tenant variant,
# all under the race detector.
chaos:
	go test -race ./internal/reasoner -run Chaos -count=1 -v && go test -race ./internal/serve -run Chaos -count=1 -v

# chaos-smoke spins randomized fault schedules for CHAOS_SMOKE_TIME (the
# seed is logged; replay a failure with CHAOS_SEED=<n>).
CHAOS_SMOKE_TIME ?= 30s
chaos-smoke:
	CHAOS_SMOKE_TIME=$(CHAOS_SMOKE_TIME) go test ./internal/reasoner -run ChaosRandomizedSchedule -count=1 -v

# bench6 snapshots the wire-path perf trajectory (critical-path ms, request/
# response bytes per window, rounds, pipeline depth) for Fig7 and Fig7Residual
# across R, PR_Dep, serial DPR, and pipelined DPR into BENCH_6.json.
BENCH6_OUT ?= $(CURDIR)/BENCH_6.json
bench6:
	BENCH6_OUT=$(BENCH6_OUT) go test ./internal/bench -run TestWireBenchArtifact -count=1 -v

# bench7 snapshots the static-vs-adaptive partitioning curve under the
# skewed+bursty workload (modeled critical-path ms, rebalancer decision
# counters, elastic join/leave) across fleet sizes into BENCH_7.json.
BENCH7_OUT ?= $(CURDIR)/BENCH_7.json
bench7:
	BENCH7_OUT=$(BENCH7_OUT) go test ./internal/bench -run TestSkewBenchArtifact -count=1 -v

# bench8 snapshots the solver-engine trajectory (per-window solve ms plus the
# conflict-driven counters) for Fig7 and Fig7Residual across the naive,
# worklist, and CDNL engines into BENCH_8.json.
BENCH8_OUT ?= $(CURDIR)/BENCH_8.json
bench8:
	BENCH8_OUT=$(BENCH8_OUT) go test ./internal/bench -run TestCDNLBenchArtifact -count=1 -v
