package streamrule

import (
	"context"
	"fmt"
	"testing"

	"streamrule/internal/workload"
)

// ProgramP and ProgramPPrime mirror the paper's Listing 1 and §II-B.
const testProgramP = `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
car_fire(X) :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).
`

const testProgramPPrime = testProgramP + `
traffic_jam(X) :- car_fire(X), many_cars(X).
`

var testInpre = []string{
	"average_speed", "car_number", "traffic_light",
	"car_in_smoke", "car_speed", "car_location",
}

var paperWindow = []Triple{
	{S: "newcastle", P: "average_speed", O: "10"},
	{S: "newcastle", P: "car_number", O: "55"},
	{S: "newcastle", P: "traffic_light", O: "true"},
	{S: "car1", P: "car_in_smoke", O: "high"},
	{S: "car1", P: "car_speed", O: "0"},
	{S: "car1", P: "car_location", O: "dangan"},
}

func TestLoadProgramErrors(t *testing.T) {
	if _, err := LoadProgram("p(X) :-", testInpre); err == nil {
		t.Error("syntax error must be reported")
	}
	if _, err := LoadProgram("p(X) :- q(X).", nil); err == nil {
		t.Error("missing inpre must be reported")
	}
	p, err := LoadProgram(testProgramP, testInpre)
	if err != nil {
		t.Fatal(err)
	}
	if p.Source() != testProgramP {
		t.Error("source not preserved")
	}
}

func TestEngineQuickstart(t *testing.T) {
	p, err := LoadProgram(testProgramP, testInpre)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Reason(paperWindow)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) != 1 || !out.Answers[0].Contains("car_fire(dangan)") {
		t.Errorf("answers = %v", out.Answers)
	}
}

func TestParallelEnginePlan(t *testing.T) {
	p, err := LoadProgram(testProgramPPrime, testInpre)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewParallelEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Partitions() != 2 {
		t.Errorf("partitions = %d", eng.Partitions())
	}
	plan := eng.Plan()
	if plan == nil || len(plan.Duplicated) != 1 || plan.Duplicated[0] != "car_number" {
		t.Errorf("plan = %v", plan)
	}
	out, err := eng.Reason(paperWindow)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Answers[0].Contains("give_notification(dangan)") {
		t.Errorf("answer = %v", out.Answers[0])
	}
	if out.Answers[0].Contains("traffic_jam(newcastle)") {
		t.Error("spurious jam")
	}
}

func TestParallelEngineAgreesWithEngine(t *testing.T) {
	p, err := LoadProgram(testProgramP, testInpre)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallelEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(3, workload.PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	w := gen.Window(2000)
	a, err := ref.Reason(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Reason(w)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(b.Answers, a.Answers); acc != 1 {
		t.Errorf("accuracy = %v", acc)
	}
	if !b.Answers[0].Equal(a.Answers[0]) {
		t.Error("answers differ")
	}
}

func TestRandomPartitioningOption(t *testing.T) {
	p, err := LoadProgram(testProgramP, testInpre)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewParallelEngine(p, WithRandomPartitioning(4, 7),
		WithOutputPredicates("traffic_jam", "car_fire", "give_notification"))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Plan() != nil {
		t.Error("random partitioning must not carry a plan")
	}
	if eng.Partitions() != 4 {
		t.Errorf("partitions = %d", eng.Partitions())
	}
	gen, err := workload.NewGenerator(5, workload.PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Reason(gen.Window(1000)); err != nil {
		t.Fatal(err)
	}
}

func TestOutputPredicatesOption(t *testing.T) {
	p, err := LoadProgram(testProgramP, testInpre)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, WithOutputPredicates("give_notification"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Reason(paperWindow)
	if err != nil {
		t.Fatal(err)
	}
	ans := out.Answers[0]
	if !ans.Contains("give_notification(dangan)") || ans.Contains("car_fire(dangan)") {
		t.Errorf("answer = %v", ans)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	p, err := LoadProgram(testProgramP, testInpre)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewParallelEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(9, workload.PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	source := gen.Window(2500)
	// Mix in noise triples the filter must drop.
	source = append(source, Triple{S: "x", P: "noise", O: "y"})

	pl := &Pipeline{
		Source:     source,
		Filter:     PredicateFilter(testInpre...),
		WindowSize: 1000,
		Reasoner:   eng,
	}
	windows := 0
	err = pl.Run(context.Background(), func(win []Triple, out *Output) error {
		windows++
		if len(win) > 1000 {
			t.Errorf("window size = %d", len(win))
		}
		if out.Latency.Total <= 0 {
			t.Error("missing latency")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2500 filtered items -> 2 full windows + 1 partial.
	if windows != 3 {
		t.Errorf("windows = %d, want 3", windows)
	}
}

func TestPipelineValidation(t *testing.T) {
	if err := (&Pipeline{}).Run(context.Background(), nil); err == nil {
		t.Error("missing reasoner must be rejected")
	}
	p, _ := LoadProgram(testProgramP, testInpre)
	eng, _ := NewEngine(p)
	if err := (&Pipeline{Reasoner: eng}).Run(context.Background(), nil); err == nil {
		t.Error("missing window config must be rejected")
	}
}

func TestPipelineSlidingWindows(t *testing.T) {
	p, err := LoadProgram(testProgramP, testInpre)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(2, workload.PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	pl := &Pipeline{
		Source:     gen.Window(1500),
		WindowSize: 1000,
		WindowStep: 250,
		Reasoner:   eng,
	}
	windows := 0
	err = pl.Run(context.Background(), func(win []Triple, out *Output) error {
		windows++
		if len(win) != 1000 {
			t.Errorf("sliding window size = %d", len(win))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Full windows at items 1000, 1250, 1500.
	if windows != 3 {
		t.Errorf("windows = %d, want 3", windows)
	}
}

// A sliding pipeline routes windower deltas into the engine's incremental
// path; the answers must match a from-scratch engine on every window.
func TestPipelineIncrementalMatchesScratch(t *testing.T) {
	p, err := LoadProgram(testProgramP, testInpre)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(5, workload.PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	pl := &Pipeline{
		Source:     gen.Window(3000),
		WindowSize: 1000,
		WindowStep: 200,
		Reasoner:   inc,
	}
	incremental := 0
	err = pl.Run(context.Background(), func(win []Triple, out *Output) error {
		want, err := oracle.Reason(win)
		if err != nil {
			return err
		}
		if len(out.Answers) != len(want.Answers) {
			t.Fatalf("answers = %d, oracle %d", len(out.Answers), len(want.Answers))
		}
		for i := range out.Answers {
			if !out.Answers[i].Equal(want.Answers[i]) {
				t.Fatalf("window answers diverge:\nincremental: %v\noracle:      %v",
					out.Answers[i], want.Answers[i])
			}
		}
		if out.Incremental {
			incremental++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if incremental == 0 {
		t.Error("no window was maintained incrementally")
	}
}

// A budgeted engine on a fresh-constant stream must rotate its private
// table, keep live entries bounded, produce answers identical to an
// unbudgeted engine, and surface the metrics through Stats and the pipeline.
func TestMemoryBudgetEndToEnd(t *testing.T) {
	p, err := LoadProgram(testProgramP, testInpre)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 300
	budgeted, err := NewEngine(p, WithMemoryBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	// The oracle gets an effectively unbounded budget: a private table that
	// never rotates, so the stream's fresh constants do not leak into the
	// process-wide default table shared by the rest of the test binary.
	plain, err := NewEngine(p, WithMemoryBudget(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	// Fresh locations/vehicles per stream position: the unbounded shape.
	var source []Triple
	for i := 0; i < 2400; i++ {
		loc := Triple{S: "", P: "average_speed", O: "10"}
		switch i % 4 {
		case 0:
			loc = Triple{S: sprintLoc(i), P: "average_speed", O: "10"}
		case 1:
			loc = Triple{S: sprintLoc(i), P: "car_number", O: "55"}
		case 2:
			loc = Triple{S: sprintLoc(i), P: "traffic_light", O: "true"}
		default:
			loc = Triple{S: sprintLoc(i + 1), P: "car_number", O: "70"}
		}
		source = append(source, loc)
	}
	pl := &Pipeline{
		Source:     source,
		WindowSize: 200,
		WindowStep: 50,
		Reasoner:   budgeted,
	}
	windows := 0
	err = pl.Run(context.Background(), func(win []Triple, out *Output) error {
		windows++
		want, err := plain.Reason(win)
		if err != nil {
			return err
		}
		if len(out.Answers) != len(want.Answers) {
			t.Fatalf("answers = %d, oracle %d", len(out.Answers), len(want.Answers))
		}
		for i := range out.Answers {
			if !out.Answers[i].Equal(want.Answers[i]) {
				t.Fatalf("answers diverge under eviction:\nbudgeted: %v\nplain:    %v",
					out.Answers[i], want.Answers[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if windows == 0 {
		t.Fatal("pipeline emitted no windows")
	}
	st, ok := pl.MemoryStats()
	if !ok {
		t.Fatal("pipeline must surface the engine's memory stats")
	}
	if st.Budget != budget {
		t.Errorf("budget = %d", st.Budget)
	}
	if st.Table.Rotations == 0 {
		t.Error("fresh-constant stream never triggered a rotation")
	}
	if st.Table.Atoms > budget+250 {
		t.Errorf("live atoms = %d, want bounded near budget %d", st.Table.Atoms, budget)
	}
	if es := budgeted.Stats(); es.Table.Rotations != st.Table.Rotations {
		t.Errorf("engine and pipeline stats disagree: %+v vs %+v", es, st)
	}
	if ps := plain.Stats(); ps.Table.Rotations != 0 {
		t.Errorf("oracle with an unbounded budget rotated %d times", ps.Table.Rotations)
	}
}

func sprintLoc(i int) string { return fmt.Sprintf("loc%d", i/3) }

func TestProgramWithShowAndAggregates(t *testing.T) {
	// End-to-end: aggregates in the program, #show projecting outputs.
	src := `
zone(Z) :- request(_, Z).
busy(Z) :- zone(Z), #count{ R : request(R, Z) } >= 2.
#show busy/1.
`
	p, err := LoadProgram(src, []string{"request"})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Reason([]Triple{
		{S: "r1", P: "request", O: "z1"},
		{S: "r2", P: "request", O: "z1"},
		{S: "r3", P: "request", O: "z2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ans := out.Answers[0]
	if !ans.Contains("busy(z1)") || ans.Contains("busy(z2)") {
		t.Errorf("answer = %v", ans)
	}
	if ans.Contains("zone(z1)") {
		t.Error("#show must hide zone/1")
	}
}

func TestAnalyzeFacade(t *testing.T) {
	p, err := LoadProgram(testProgramPPrime, testInpre)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Input.G.IsConnected() {
		t.Error("P' input graph must be connected")
	}
	if a.Plan.NumPartitions() != 2 {
		t.Errorf("plan = %v", a.Plan)
	}
}
